"""Batch-vectorized classifier kernel: classify whole populations as arrays.

The compiled core (:mod:`repro.core.compiled`) made a *single*
classification ~15x faster than the reference; this module supplies the
next multiplier — **across-instance batching**. The census engine, the
service batcher and Monte Carlo sweeps all hold populations of
configurations and, before this module, classified them one at a time:
every instance paid its own Python interpreter loop per refinement
iteration. Here the whole population is packed into one struct-of-arrays
representation and refined in lockstep:

* :class:`ConfigurationBatch` — many configurations compiled into shared
  flat numpy arrays: concatenated node tags, one concatenated CSR
  adjacency (``adj_offsets``/``adj_targets`` over *global* node indices),
  per-instance node offsets, and per-instance ``sigma``. Instance ``b``'s
  nodes occupy the contiguous global index range
  ``node_offsets[b] .. node_offsets[b+1]-1`` in the paper's fixed vertex
  order, so per-instance quantities (classes, representatives) live in
  flat arrays indexed by ``node_offsets[b] + local``.
* **Lockstep refinement** — one numpy pass per Classifier iteration
  computes every active instance's Partitioner labels at once (edge-wise
  contribution filter, lexsort grouping for the ``1``/``∗`` multiplicity
  marks) and refines via one :func:`numpy.unique` row-grouping over
  ``(instance, old class, label)`` keys. Fresh class numbers are assigned
  in each instance's vertex order, exactly where the reference assigns
  them, and each instance is **retired from the frontier the moment it
  decides** — a mixed batch never makes a small instance wait for a
  large one.
* **Bit-for-bit output** — the per-instance
  :class:`~repro.core.trace.ClassifierTrace` (labels, class numbering,
  representatives, decision, leader, iteration count) is identical to
  :func:`repro.core.classifier.reference_classify`'s, enforced by the
  shared differential harness (:mod:`repro.testing`) and the E24
  benchmark. Error behavior matches serial classification per instance:
  an invalid instance raises exactly what the serial path raises, and
  with ``errors="return"`` it does so without poisoning the other
  instances' results.

The kernel is wired in as ``algorithm="batch"`` on
:func:`repro.core.classifier.classify` and is the ``auto`` choice
wherever callers already hold batches — :func:`repro.engine.pipeline.
batch_records` (hence the sharded census and the service dispatch loop)
and :func:`repro.analysis.census.census` — via
:func:`resolve_batch_algorithm`, which falls back to the compiled core
when numpy is absent. ``classifier_ops`` stays pinned to the reference
Lemma 3.5 accounting; like the ``fast`` ablation, the batch kernel does
not meter operations. The E24 benchmark gates a >= 5x speedup over the
compiled core on a 1k-configuration cold batch (``BENCH_E24.json``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is a declared dependency, but every caller degrades cleanly
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via monkeypatch
    np = None
    HAVE_NUMPY = False

from ..obs.runtime import STATE as _OBS
from ..obs.runtime import registry as _registry
from ..obs.runtime import span as _obs_span
from .classifier import ALGORITHM_NAMES, ClassifierInvariantError
from .configuration import Configuration
from .partition import ONE, STAR, Label
from .trace import NO, YES, ClassifierTrace, IterationRecord


def resolve_batch_algorithm(algorithm: str) -> str:
    """Resolve the ``algorithm`` knob for a caller holding a *batch*.

    ``auto`` resolves to ``"batch"`` when numpy is importable and to
    ``"compiled"`` (the single-instance default) otherwise, so batched
    callers — the engine's :func:`~repro.engine.pipeline.batch_records`,
    the serial census, the service dispatch loop — get the vectorized
    kernel exactly when it can run. Explicitly requesting ``"batch"``
    without numpy raises instead of silently degrading.
    """
    if algorithm not in ALGORITHM_NAMES:
        raise ValueError(
            f"unknown classifier algorithm {algorithm!r} "
            f"(choose one of {ALGORITHM_NAMES})"
        )
    if algorithm == "auto":
        return "batch" if HAVE_NUMPY else "compiled"
    if algorithm == "batch":
        _require_numpy()
    return algorithm


def _require_numpy() -> None:
    """Raise a clear error when the vectorized kernel cannot run."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            'algorithm="batch" requires numpy, which is not importable; '
            'install it or use algorithm="auto" (which falls back to the '
            "compiled core)"
        )


# ----------------------------------------------------------------------
# the struct-of-arrays batch representation
# ----------------------------------------------------------------------
#: int64 headroom bound for single-key packed sorts in the kernel.
_PACK_LIMIT = 2 ** 62

_RANGE_TUPLES: Dict[int, Tuple[int, ...]] = {}


def _identity_nodes(n: int) -> Tuple[int, ...]:
    """Cached ``(0, 1, ..., n-1)`` for the dense-node fast path."""
    cached = _RANGE_TUPLES.get(n)
    if cached is None:
        cached = tuple(range(n))
        _RANGE_TUPLES[n] = cached
    return cached


@dataclass(frozen=True)
class ConfigurationBatch:
    """Many configurations packed into shared flat numpy arrays.

    The across-instance analogue of
    :class:`~repro.core.compiled.IndexedConfiguration`: every instance is
    normalized and re-indexed to dense positions, then concatenated into
    one global node axis (instance-major, vertex order within an
    instance) and one global CSR adjacency. All kernel state — classes,
    labels, representatives — lives in arrays over these global indices,
    so one numpy expression steps every instance at once.
    """

    configs: Tuple[Configuration, ...]  #: normalized per-instance configs
    node_offsets: "np.ndarray"  #: (B+1,) instance b owns nodes [off[b], off[b+1])
    instance_of_node: "np.ndarray"  #: (N,) owning instance per global node
    tags: "np.ndarray"  #: (N,) normalized wakeup tags
    adj_offsets: "np.ndarray"  #: (N+1,) CSR row offsets per global node
    adj_targets: "np.ndarray"  #: (E,) CSR targets, as global node indices
    edge_source: "np.ndarray"  #: (E,) source global node per directed edge
    sigma: "np.ndarray"  #: (B,) per-instance span

    @property
    def num_instances(self) -> int:
        """Number of packed configurations ``B``."""
        return len(self.configs)

    @property
    def num_nodes(self) -> int:
        """Total node count ``N`` across all instances."""
        return len(self.tags)

    @classmethod
    def from_configurations(
        cls,
        configs: Sequence[Configuration],
        *,
        assume_normalized: bool = False,
    ) -> "ConfigurationBatch":
        """Normalize and pack ``configs`` (any mix of sizes and spans).

        Node ids may be arbitrary sortable objects; instances whose
        nodes are already dense ints ``0..n-1`` take a no-lookup fast
        path. Cost is one ``O(n + m)`` Python pass per instance — the
        only per-instance Python the batch path ever runs. Callers that
        have already normalized every instance (``batch_outcomes`` does,
        for per-instance error isolation) pass ``assume_normalized`` to
        skip the redundant second pass.
        """
        _require_numpy()
        from itertools import chain

        normalized: List[Configuration] = []
        offsets: List[int] = [0]
        tag_values: List[int] = []
        rows: List[Tuple[int, ...]] = []  # local adjacency, one row/node
        base = 0
        for cfg in configs:
            norm = cfg if assume_normalized else cfg.normalize()
            normalized.append(norm)
            # this loop is the only per-instance Python on the batch
            # path, so it reads the sibling class's slots directly and
            # defers all per-node/per-edge work to C-level maps below
            nodes = norm._nodes
            n = len(nodes)
            tag_values.extend(map(norm._tags.__getitem__, nodes))
            if nodes == _identity_nodes(n):
                rows.extend(map(norm._adj.__getitem__, nodes))
            else:
                pos = {v: i for i, v in enumerate(nodes)}
                adj = norm._adj
                # pos is monotone in node order and rows are sorted by
                # id, so mapped positions are already ascending
                rows.extend(
                    tuple(pos[w] for w in adj[v]) for v in nodes
                )
            base += n
            offsets.append(base)

        node_offsets = np.asarray(offsets, dtype=np.int64)
        tags = np.asarray(tag_values, dtype=np.int64)
        deg = np.fromiter(map(len, rows), dtype=np.int64, count=base)
        num_edges = int(deg.sum())
        adj_offsets = np.zeros(base + 1, dtype=np.int64)
        np.cumsum(deg, out=adj_offsets[1:])
        counts = np.diff(node_offsets)
        instance_of_node = np.repeat(
            np.arange(len(normalized), dtype=np.int64), counts
        )
        edge_source = np.repeat(np.arange(base, dtype=np.int64), deg)
        adj_targets = np.fromiter(
            chain.from_iterable(rows), dtype=np.int64, count=num_edges
        )
        if base:
            adj_targets += node_offsets[instance_of_node[edge_source]]
        if base:
            sigma = np.maximum.reduceat(tags, node_offsets[:-1])
        else:
            sigma = np.zeros(0, dtype=np.int64)
        return cls(
            configs=tuple(normalized),
            node_offsets=node_offsets,
            instance_of_node=instance_of_node,
            tags=tags,
            adj_offsets=adj_offsets,
            adj_targets=adj_targets,
            edge_source=edge_source,
            sigma=sigma,
        )


# ----------------------------------------------------------------------
# kernel internals
# ----------------------------------------------------------------------
@dataclass
class _IterationSnapshot:
    """Raw arrays of one lockstep iteration (trace mode only)."""

    active_nodes: "np.ndarray"  #: global indices of nodes stepped
    label_node: "np.ndarray"  #: global node per label triple (sorted)
    label_packed: "np.ndarray"  #: packed (a, b, mark) triple per label
    classes: "np.ndarray"  #: class per active node, after Refine
    reps: "np.ndarray"  #: rep_flat copy (rep node per class slot)
    num_classes: "np.ndarray"  #: per-instance class count, after Refine


@dataclass
class _KernelResult:
    """Per-instance outcomes of one lockstep run."""

    feasible: "np.ndarray"  #: (B,) bool
    decided_at: "np.ndarray"  #: (B,) iteration of the decision (0 = error)
    leader_class: "np.ndarray"  #: (B,) smallest singleton class, or -1
    leader_node: "np.ndarray"  #: (B,) global node index of the leader, or -1
    b_modulus: int  #: packing modulus of the (a, b) -> a*K + b encoding
    errors: List[Optional[BaseException]]  #: per-instance kernel errors
    snapshots: List[_IterationSnapshot]  #: one per iteration (trace mode)


def _run_kernel(batch: ConfigurationBatch, *, record: bool) -> _KernelResult:
    """Refine every instance in lockstep until each decides.

    With ``record`` the per-iteration arrays are snapshotted so full
    traces can be materialized; without it only the decision outputs are
    kept — the fast path for census records and service responses.
    """
    B = batch.num_instances
    N = batch.num_nodes
    node_off = batch.node_offsets
    inst_of = batch.instance_of_node
    tags = batch.tags
    edge_src = batch.edge_source
    adj_tgt = batch.adj_targets
    big = np.iinfo(np.int64).max

    # packing constants. A label triple (a, b, mark) has 1 <= a <= n,
    # 1 <= b <= 2σ+1 and mark in {ONE, STAR} = {1, 2}, so
    # t = (a*K + b)*3 + mark with K = 2σ_max + 2 encodes it in one
    # int64, order-isomorphically to the (a, b, mark) tuple order, and
    # t >= 4 keeps 0 free as the padding sentinel.
    n_max = int(np.diff(node_off).max()) if B else 1
    K = 2 * int(batch.sigma.max()) + 2 if B else 2
    t_max = (n_max * K + K - 1) * 3 + STAR
    bits = t_max.bit_length()
    per_word = max(1, 63 // bits)
    P = (n_max + 1) * K  # modulus of the packed (a, b) pair
    ic_bits = (B * (n_max + 1)).bit_length()  # bits of (instance, class)

    # the b component of every potential triple is tag-only, hence
    # static: precompute it per directed edge once for the whole run
    if N:
        edge_b = (
            batch.sigma[inst_of[edge_src]] + 1 + tags[adj_tgt] - tags[edge_src]
        )
        edge_tag_differs = tags[adj_tgt] != tags[edge_src]
    else:
        edge_b = np.zeros(0, dtype=np.int64)
        edge_tag_differs = np.zeros(0, dtype=bool)

    # the ⌈n/2⌉ bound is evaluated here (not at pack time) so the
    # invariant-violation parity tests can starve it like the serial
    # implementations'
    max_iters = np.asarray(
        [math.ceil(n / 2) for n in np.diff(node_off).tolist()],
        dtype=np.int64,
    )

    cls = np.ones(N, dtype=np.int64)
    num_classes = np.ones(B, dtype=np.int64)
    rep_flat = np.full(N, -1, dtype=np.int64)
    if B:
        rep_flat[node_off[:-1]] = node_off[:-1]  # class 1's rep: first node
    alive = np.ones(B, dtype=bool)

    result = _KernelResult(
        feasible=np.zeros(B, dtype=bool),
        decided_at=np.zeros(B, dtype=np.int64),
        leader_class=np.full(B, -1, dtype=np.int64),
        leader_node=np.full(B, -1, dtype=np.int64),
        b_modulus=K,
        errors=[None] * B,
        snapshots=[],
    )

    i = 0
    refresh = False
    # every instance is alive on the first pass: the active node set is
    # the identity and the active edge views are the full edge arrays
    act = np.arange(N, dtype=np.int64)
    row_of = act
    ve, we, eb, etd = edge_src, adj_tgt, edge_b, edge_tag_differs
    while alive.any():
        i += 1
        overdue = alive & (i > max_iters)
        if overdue.any():
            for b in np.flatnonzero(overdue):
                result.errors[b] = ClassifierInvariantError(
                    f"batch classify failed to decide within ⌈n/2⌉ = "
                    f"{int(max_iters[b])} iterations on "
                    f"{batch.configs[b]!r} — contradicts Lemma 3.4"
                )
            alive &= ~overdue
            refresh = True
            if not alive.any():
                break
        if refresh:
            act = np.flatnonzero(alive[inst_of])
            row_of = np.full(N, -1, dtype=np.int64)
            row_of[act] = np.arange(act.size, dtype=np.int64)
            eact = np.flatnonzero(alive[inst_of[edge_src]])
            ve = edge_src[eact]
            we = adj_tgt[eact]
            eb = edge_b[eact]
            etd = edge_tag_differs[eact]
            refresh = False
        nA = act.size

        # --- Partitioner labels, all active instances at once ----------
        if i == 1 and act.size == N:
            # first pass: every class is 1, so the triple stream is
            # tag-only — no class gathers needed
            v2 = ve[etd]
            p2 = K + eb[etd]  # packed (a, b) with a = 1, order-true
        else:
            cv = cls[ve]
            cw = cls[we]
            differs = (cw != cv) | etd
            v2 = ve[differs]
            p2 = cw[differs] * K + eb[differs]  # packed (a, b), order-true
        if N * P < _PACK_LIMIT:
            # one stable argsort of (node, triple) packed into one int64
            order = np.argsort(v2 * P + p2, kind="stable")
        else:  # pragma: no cover - needs ~2^52 node-triples
            order = np.lexsort((p2, v2))
        v2, p2 = v2[order], p2[order]
        if v2.size:
            fresh_triple = np.empty(v2.size, dtype=bool)
            fresh_triple[0] = True
            fresh_triple[1:] = (v2[1:] != v2[:-1]) | (p2[1:] != p2[:-1])
            starts = np.flatnonzero(fresh_triple)
            bounds = np.empty(starts.size + 1, dtype=np.int64)
            bounds[:-1] = starts
            bounds[-1] = v2.size
            counts = np.diff(bounds)
            label_node = v2[starts]
            label_packed = p2[starts] * 3 + np.where(counts == 1, ONE, STAR)
        else:
            label_node = label_packed = np.zeros(0, dtype=np.int64)

        # fixed-width label rows, bit-packed `per_word` triples to an
        # int64 word; 0-padding cannot collide since every t >= 4
        if label_node.size:
            node_change = np.empty(label_node.size, dtype=bool)
            node_change[0] = True
            node_change[1:] = label_node[1:] != label_node[:-1]
            run_starts = np.flatnonzero(node_change)
            run_bounds = np.empty(run_starts.size + 1, dtype=np.int64)
            run_bounds[:-1] = run_starts
            run_bounds[-1] = label_node.size
            run_len = np.diff(run_bounds)
            width = int(run_len.max())
            n_words = -(-width // per_word)
            slot = np.arange(label_node.size, dtype=np.int64) - np.repeat(
                run_starts, run_len
            )
            words = np.zeros((nA, n_words), dtype=np.int64)
            flat = words.reshape(-1)
            target = row_of[label_node] * n_words + slot // per_word
            sub = slot % per_word
            # triples sharing a word have distinct sub-slots, so one
            # scatter per sub-slot class is collision-free
            for s in range(min(per_word, width)):
                pick = sub == s
                flat[target[pick]] |= label_packed[pick] << (s * bits)
        else:
            n_words = 0
            words = np.zeros((nA, 0), dtype=np.int64)

        # --- Refine: group by (instance, old class, label) -------------
        inst_act = inst_of[act]
        old_cls_act = cls[act]
        ic = inst_act * (n_max + 1) + old_cls_act
        first = group = None
        if n_words:
            # densify word values, then pack (ic, words) into one int64
            # if the bit budget allows — one stable argsort instead of a
            # lexicographic sort over void rows
            unique_words, word_ids = np.unique(
                words.reshape(-1), return_inverse=True
            )
            word_bits = int(unique_words.size).bit_length()
            if ic_bits + n_words * word_bits <= 63:
                word_ids = word_ids.reshape(nA, n_words)
                key = ic
                for j in range(n_words):
                    key = (key << word_bits) | word_ids[:, j]
            else:  # pragma: no cover - needs extremely wide labels
                key = None
        else:
            key = ic
        if key is not None:
            order = np.argsort(key, kind="stable")
            sorted_key = key[order]
            boundary = np.empty(nA, dtype=bool)
            if nA:
                boundary[0] = True
                boundary[1:] = sorted_key[1:] != sorted_key[:-1]
            group = np.empty(nA, dtype=np.int64)
            group[order] = np.cumsum(boundary) - 1
            # stability makes each group's first sorted member its
            # smallest row — the group's first node in vertex order
            first = order[np.flatnonzero(boundary)]
        else:  # pragma: no cover - fallback, same grouping semantics
            keys = np.empty((nA, 2 + n_words), dtype=np.int64)
            keys[:, 0] = inst_act
            keys[:, 1] = old_cls_act
            keys[:, 2:] = words
            _, first, group = np.unique(
                keys, axis=0, return_index=True, return_inverse=True
            )
            group = group.reshape(-1)
        G = first.size

        # a node keeps its class number iff it grouped with that class's
        # representative (all of a group shares one verdict)
        rep_node = rep_flat[node_off[inst_act] + old_cls_act - 1]
        keep = group == group[row_of[rep_node]]
        new_cls_act = old_cls_act.copy()

        kept_group = np.zeros(G, dtype=bool)
        kept_group[group[keep]] = True
        fresh_groups = np.flatnonzero(~kept_group)
        old_num_classes = num_classes.copy()
        if fresh_groups.size:
            # fresh numbers appear in each instance's vertex order: sort
            # fresh groups by first member (global order is instance-
            # major vertex order), then rank within the instance segment
            fg_first = first[fresh_groups]
            fg_order = np.argsort(fg_first)
            fresh_groups = fresh_groups[fg_order]
            fg_first = fg_first[fg_order]
            fg_inst = inst_act[fg_first]
            seg_change = np.empty(fg_inst.size, dtype=bool)
            seg_change[0] = True
            seg_change[1:] = fg_inst[1:] != fg_inst[:-1]
            seg_starts = np.flatnonzero(seg_change)
            seg_len = np.diff(np.append(seg_starts, fg_inst.size))
            rank = np.arange(fg_inst.size, dtype=np.int64) - np.repeat(
                seg_starts, seg_len
            )
            fresh_numbers = num_classes[fg_inst] + rank + 1
            group_number = np.zeros(G, dtype=np.int64)
            group_number[fresh_groups] = fresh_numbers
            moved = ~keep
            new_cls_act[moved] = group_number[group[moved]]
            rep_flat[node_off[fg_inst] + fresh_numbers - 1] = act[fg_first]
            num_classes += np.bincount(fg_inst, minlength=B)
        cls[act] = new_cls_act

        if record:
            result.snapshots.append(
                _IterationSnapshot(
                    active_nodes=act,
                    label_node=label_node,
                    label_packed=label_packed,
                    classes=new_cls_act,
                    reps=rep_flat.copy(),
                    num_classes=num_classes.copy(),
                )
            )

        # --- decide & retire -------------------------------------------
        class_slot = node_off[inst_act] + new_cls_act - 1
        sizes = np.bincount(class_slot, minlength=N)
        singleton_slots = np.flatnonzero(sizes == 1)
        best = np.full(B, big, dtype=np.int64)
        if singleton_slots.size:
            sb = inst_of[singleton_slots]
            np.minimum.at(
                best, sb, singleton_slots - node_off[sb] + 1
            )
        yes = alive & (best < big)
        no = alive & ~yes & (num_classes == old_num_classes)
        if yes.any():
            result.feasible[yes] = True
            result.decided_at[yes] = i
            result.leader_class[yes] = best[yes]
            result.leader_node[yes] = rep_flat[
                node_off[:-1][yes] + best[yes] - 1
            ]
        if no.any():
            result.decided_at[no] = i
        retired = yes | no
        if retired.any():
            alive &= ~retired
            refresh = True
    return result


# ----------------------------------------------------------------------
# trace materialization
# ----------------------------------------------------------------------
def _materialize_trace(
    batch: ConfigurationBatch, b: int, result: _KernelResult
) -> ClassifierTrace:
    """Rebuild instance ``b``'s full ``ClassifierTrace`` from snapshots."""
    cfg = batch.configs[b]
    nodes = cfg.nodes
    lo = int(batch.node_offsets[b])
    hi = int(batch.node_offsets[b + 1])
    trace = ClassifierTrace(
        config=cfg,
        sigma=int(batch.sigma[b]),
        initial_classes={v: 1 for v in nodes},
        initial_reps=(None, nodes[0]),
    )
    decided_at = int(result.decided_at[b])
    K = result.b_modulus
    for it in range(decided_at):
        snap = result.snapshots[it]
        labels: Dict[object, Label] = {v: () for v in nodes}
        s = int(np.searchsorted(snap.label_node, lo))
        e = int(np.searchsorted(snap.label_node, hi))
        if s < e:
            lv = snap.label_node[s:e].tolist()
            lt = snap.label_packed[s:e].tolist()
            current = lv[0]
            triples: List[Tuple[int, int, int]] = []
            for g, t in zip(lv, lt):
                if g != current:
                    labels[nodes[current - lo]] = tuple(triples)
                    triples = []
                    current = g
                pair, mark = divmod(t, 3)
                a, rb = divmod(pair, K)
                triples.append((a, rb, mark))
            labels[nodes[current - lo]] = tuple(triples)
        sa = int(np.searchsorted(snap.active_nodes, lo))
        ea = int(np.searchsorted(snap.active_nodes, hi))
        active = snap.active_nodes[sa:ea].tolist()
        class_values = snap.classes[sa:ea].tolist()
        nc = int(snap.num_classes[b])
        reps = snap.reps[lo : lo + nc].tolist()
        trace.iterations.append(
            IterationRecord(
                index=it + 1,
                labels=labels,
                classes_after={
                    nodes[g - lo]: c for g, c in zip(active, class_values)
                },
                reps_after=(None, *(nodes[r - lo] for r in reps)),
                num_classes_after=nc,
            )
        )
    trace.decided_at = decided_at
    if result.feasible[b]:
        trace.decision = YES
        trace.leader_class = int(result.leader_class[b])
        trace.leader = nodes[int(result.leader_node[b]) - lo]
    else:
        trace.decision = NO
    return trace


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
@dataclass
class BatchOutcome:
    """Result of classifying one instance of a batch.

    Exactly one of ``error`` / the result fields is meaningful: when
    ``error`` is set, the instance failed exactly as serial
    classification would have (same exception object), and the other
    fields are placeholders. ``trace`` is populated only when the batch
    ran in trace mode (``batch_outcomes(..., traces=True)``).
    """

    config: Optional[Configuration]  #: the normalized instance, if valid
    feasible: bool  #: Classifier said Yes
    iterations: int  #: number of Partitioner iterations until decision
    trace: Optional[ClassifierTrace] = None  #: full trace (trace mode)
    error: Optional[BaseException] = None  #: per-instance failure


def batch_outcomes(
    configs: Sequence[Configuration],
    *,
    traces: bool = False,
    errors: str = "raise",
) -> List[BatchOutcome]:
    """Classify ``configs`` through the lockstep kernel, in input order.

    The workhorse behind :func:`batch_classify` and
    :func:`batch_census_records`. ``traces=False`` (the fast path) skips
    per-iteration snapshotting and trace materialization entirely —
    callers that only consume the verdict and iteration count (census
    records, decide-mode service responses) pay for nothing else.

    ``errors`` controls per-instance failures (an instance that is not a
    valid configuration, or that violates the Lemma 3.4 invariant):
    ``"raise"`` re-raises the first failing instance's exception —
    exactly the exception serial classification raises — after the rest
    of the batch has been classified; ``"return"`` delivers it in that
    instance's :attr:`BatchOutcome.error` instead, so one bad instance
    never poisons the others' results.
    """
    _require_numpy()
    if errors not in ("raise", "return"):
        raise ValueError(
            f'errors must be "raise" or "return", got {errors!r}'
        )
    configs = list(configs)
    outcomes: List[BatchOutcome] = []
    valid: List[Configuration] = []
    valid_slots: List[int] = []
    for idx, cfg in enumerate(configs):
        try:
            norm = cfg.normalize()
        except Exception as exc:  # identical to the serial first failure
            outcomes.append(
                BatchOutcome(
                    config=None, feasible=False, iterations=0, error=exc
                )
            )
        else:
            outcomes.append(
                BatchOutcome(config=None, feasible=False, iterations=0)
            )
            valid.append(norm)
            valid_slots.append(idx)

    if valid:
        batch = ConfigurationBatch.from_configurations(
            valid, assume_normalized=True
        )
        with _obs_span("batch.kernel", instances=len(valid), traces=traces):
            result = _run_kernel(batch, record=traces)
        if _OBS.enabled:  # per-batch: guarded, one attribute check when off
            _registry.inc("batch.kernel_calls")
            _registry.inc("batch.instances", len(valid))
        for b, idx in enumerate(valid_slots):
            out = outcomes[idx]
            if result.errors[b] is not None:
                out.error = result.errors[b]
                continue
            out.config = batch.configs[b]
            out.feasible = bool(result.feasible[b])
            out.iterations = int(result.decided_at[b])
            if traces:
                out.trace = _materialize_trace(batch, b, result)

    if errors == "raise":
        for out in outcomes:
            if out.error is not None:
                raise out.error
    return outcomes


def batch_classify(
    configs: Sequence[Configuration],
) -> List[ClassifierTrace]:
    """Classify a batch; returns one full trace per instance, in order.

    Drop-in batched equivalent of calling
    :func:`repro.core.classifier.classify` per configuration: each
    returned :class:`~repro.core.trace.ClassifierTrace` is bit-for-bit
    the reference implementation's. The first invalid instance raises
    exactly what serial classification raises (use
    :func:`batch_outcomes` with ``errors="return"`` for per-instance
    error delivery).
    """
    return [
        out.trace for out in batch_outcomes(configs, traces=True)
    ]


def batch_census_records(
    configs: Sequence[Configuration], *, measure_rounds: bool = False
) -> List[Dict]:
    """Census records for a batch — the engine's vectorized miss path.

    One :func:`repro.engine.pipeline.census_record`-shaped dict per
    configuration (``feasible`` / ``iterations`` / ``rounds``),
    bit-for-bit equal to the serial records for every instance. Decide
    workloads run the no-trace fast path; ``measure_rounds`` workloads
    materialize traces (the canonical DRIP is constructed from them) and
    run the dedicated election per feasible instance.
    """
    if not measure_rounds:
        # lean path: no traces, no BatchOutcome objects — straight from
        # the kernel's arrays to record dicts (the E24-gated hot path)
        _require_numpy()
        normalized = [cfg.normalize() for cfg in configs]
        batch = ConfigurationBatch.from_configurations(
            normalized, assume_normalized=True
        )
        with _obs_span(
            "batch.kernel", instances=len(normalized), traces=False
        ):
            result = _run_kernel(batch, record=False)
        if _OBS.enabled:
            _registry.inc("batch.kernel_calls")
            _registry.inc("batch.instances", len(normalized))
        for error in result.errors:
            if error is not None:
                raise error
        return [
            {"feasible": feasible, "iterations": iterations, "rounds": None}
            for feasible, iterations in zip(
                result.feasible.tolist(), result.decided_at.tolist()
            )
        ]
    outcomes = batch_outcomes(configs, traces=True)
    from .election import elect_leader

    records: List[Dict] = []
    for out in outcomes:
        rounds: Optional[int] = None
        if out.feasible:
            rounds = elect_leader(out.config, trace=out.trace).rounds
        records.append(
            {
                "feasible": out.feasible,
                "iterations": out.iterations,
                "rounds": rounds,
            }
        )
    return records
