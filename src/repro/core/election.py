"""Dedicated leader election (Theorem 3.15) — end to end.

``elect_leader`` ties the layers together: classify the configuration,
build the canonical protocol ``(D_G, f_G)``, run it as a genuinely
distributed execution on the radio simulator, apply the decision function
to each node's terminal history, and package the result together with the
paper's complexity accounting (``done_v`` vs the O(n²σ) bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..radio.events import ExecutionResult
from ..radio.simulator import simulate
from .canonical import CanonicalProtocol
from .classifier import classify
from .configuration import Configuration
from .trace import ClassifierTrace


class ElectionError(RuntimeError):
    """The election outcome contradicts the theory (internal check)."""


@dataclass
class ElectionResult:
    """Outcome of running the dedicated algorithm on a configuration."""

    config: Configuration  #: normalized configuration
    trace: ClassifierTrace
    protocol: CanonicalProtocol
    execution: ExecutionResult
    leaders: List[object]  #: nodes whose decision output was 1

    @property
    def elected(self) -> bool:
        """True iff exactly one node declared itself leader."""
        return len(self.leaders) == 1

    @property
    def leader(self) -> Optional[object]:
        return self.leaders[0] if self.elected else None

    @property
    def rounds(self) -> int:
        """Local termination round ``done_v`` (identical for all nodes; the
        paper's time measure for distributed algorithms)."""
        return self.execution.max_done_local()

    @property
    def global_rounds(self) -> int:
        """Global rounds elapsed until the last node terminated."""
        return self.execution.rounds_elapsed

    @property
    def backend_stats(self):
        """:class:`~repro.radio.backends.base.BackendStats` of the
        simulation that ran this election (None for replayed results)."""
        return self.execution.backend_stats

    def round_bound(self, constant: int = 2) -> int:
        """An explicit O(n²σ) budget: phases ≤ ⌈n/2⌉, blocks ≤ n per
        phase, ``2σ+1`` rounds per block plus σ per phase (Lemma 3.10).

        The exact schedule length is
        ``Σ_j numClasses_j·(2σ+1) + σ`` + 1, which is at most
        ``⌈n/2⌉·(n·(2σ+1)+σ) + 1``; ``constant`` adds slack for shape
        assertions in experiments.
        """
        n = self.config.n
        sigma = self.config.span
        phases = (n + 1) // 2
        return constant * (phases * (n * (2 * sigma + 1) + sigma) + 1)

    def within_bound(self) -> bool:
        """True iff ``done_v`` is within the O(n²σ) budget."""
        return self.rounds <= self.round_bound()

    def describe(self) -> str:
        """One-line human-readable outcome."""
        status = (
            f"leader={self.leader}" if self.elected else "no leader elected"
        )
        return (
            f"Election on n={self.config.n}, σ={self.config.span}: "
            f"{status}; done_v={self.rounds} "
            f"(bound {self.round_bound()}), feasible={self.trace.feasible}"
        )


def elect_leader(
    config: Configuration,
    *,
    trace: Optional[ClassifierTrace] = None,
    record_trace: bool = False,
    check: bool = True,
    backend: str = "auto",
) -> ElectionResult:
    """Run the dedicated leader election algorithm of Theorem 3.15.

    For feasible configurations this elects exactly one leader — the node
    the classifier isolates — within ``O(n²σ)`` local rounds. For
    infeasible configurations the canonical DRIP still runs and terminates,
    but no node outputs 1.

    Parameters
    ----------
    trace:
        reuse an existing classifier trace (must be for ``config``).
    record_trace:
        keep the simulator's per-round event records.
    check:
        verify the theory-predicted outcome (unique leader iff feasible,
        leader identity, all-spontaneous wakeups, synchronized ``done_v``)
        and raise :class:`ElectionError` on violation.
    backend:
        simulation backend knob (``"reference" | "fast" | "auto"``); the
        canonical DRIP is schedule-oblivious, so ``"auto"`` runs the
        event-driven fast backend.
    """
    if trace is None:
        trace = classify(config)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config  # normalized
    execution = simulate(
        network,
        protocol.factory,
        max_rounds=protocol.round_budget(network.span),
        record_trace=record_trace,
        backend=backend,
    )
    leaders = execution.decide_leaders(protocol.decision)
    result = ElectionResult(
        config=network,
        trace=trace,
        protocol=protocol,
        execution=execution,
        leaders=leaders,
    )

    if check:
        _verify(result)
    return result


def _verify(result: ElectionResult) -> None:
    """Cross-check the execution against the paper's guarantees."""
    trace = result.trace
    execution = result.execution

    if not execution.all_spontaneous():
        raise ElectionError(
            "canonical DRIP execution had a forced wakeup — contradicts "
            "Lemma 3.6 (the canonical DRIP is patient)"
        )
    dones = set(execution.done_local.values())
    if len(dones) != 1:
        raise ElectionError(
            f"nodes terminated in different local rounds {sorted(dones)} — "
            "contradicts the canonical schedule"
        )
    expected_done = result.protocol.expected_done
    if dones != {expected_done}:
        raise ElectionError(
            f"done_v = {dones.pop()} but the schedule predicts "
            f"{expected_done}"
        )
    if trace.feasible:
        if not result.elected:
            raise ElectionError(
                f"feasible configuration but {len(result.leaders)} leaders "
                f"were elected — contradicts Theorem 3.15"
            )
        if result.leader != trace.leader:
            raise ElectionError(
                f"elected {result.leader!r} but Classifier isolated "
                f"{trace.leader!r}"
            )
    else:
        if result.leaders:
            raise ElectionError(
                f"infeasible configuration but nodes {result.leaders!r} "
                "declared themselves leader"
            )


def election_rounds(config: Configuration) -> int:
    """Convenience: ``done_v`` of the dedicated algorithm on ``config``."""
    return elect_leader(config).rounds
