"""The paper's centralized decision algorithm ``Classifier`` (Section 3.1).

:func:`classify` is the single entry point every caller — ``decide``,
the census engine, the service, the CLI — goes through. It dispatches
on an ``algorithm`` knob:

* ``"reference"`` — :func:`reference_classify`, the faithful O(n³Δ)
  transcription below (the Lemma 3.5 cost model; the oracle all other
  implementations are gated against);
* ``"fast"`` — :func:`repro.core.fast_classifier.fast_classify`, the
  hash-based ablation (same output, O(nΔ log Δ) per iteration);
* ``"compiled"`` — :func:`repro.core.compiled.compiled_classify`, the
  indexed, label-interned, split-driven incremental core;
* ``"batch"`` — :func:`repro.core.batch.batch_classify`, the
  struct-of-arrays numpy kernel that classifies whole populations in
  lockstep (a single configuration is a batch of one; callers holding
  real batches use :func:`repro.core.batch.batch_outcomes` directly);
* ``"auto"`` (default) — resolves to ``"compiled"`` here. Batched
  callers (the census engine, the service, population sweeps) resolve
  ``auto`` through :func:`repro.core.batch.resolve_batch_algorithm`
  instead, which picks ``"batch"`` when numpy is available.

All implementations produce bit-for-bit identical
:class:`~repro.core.trace.ClassifierTrace` objects (enforced by the
E23/E24 benchmarks and the shared differential harness in
:mod:`repro.testing`), so the knob is a pure performance choice.

Faithful transcription of Algorithms 1–4:

* ``Init-Aug`` — every node starts in class 1 with a null label; the first
  node in the fixed vertex order becomes the class-1 representative.
* ``Partitioner`` — assigns each node the label encoding what it would
  hear during the current phase of the canonical DRIP (one transmission
  block of ``2σ+1`` rounds per class; a neighbour ``w`` of ``v`` lands in
  ``v``'s local round ``σ+1+t_w−t_v`` of block ``w_CLASS``), then refines
  the partition via ``Refine``.
* ``Classifier`` — repeats ``Partitioner`` for at most ``⌈n/2⌉``
  iterations; outputs **Yes** as soon as some class has exactly one node
  and **No** as soon as an iteration fails to increase the class count.

Lemma 3.4 guarantees one of the two exits fires within ``⌈n/2⌉``
iterations, and Theorem 3.17 shows the output equals feasibility of the
input configuration. The full refinement history is returned as a
:class:`~repro.core.trace.ClassifierTrace`, from which the canonical DRIP
is constructed without further computation.
"""

from __future__ import annotations

import math
from typing import Optional

from ..obs.runtime import STATE as _OBS
from ..obs.runtime import registry as _registry
from .configuration import Configuration
from .partition import (
    OpCounter,
    compute_all_labels,
    refine,
    singleton_classes,
)
from .trace import NO, YES, ClassifierTrace, IterationRecord


class ClassifierInvariantError(AssertionError):
    """Internal invariant violation (would contradict Lemma 3.4)."""


#: Accepted values of the ``algorithm`` knob, in CLI display order.
ALGORITHM_NAMES = ("auto", "batch", "compiled", "fast", "reference")


def resolve_algorithm(algorithm: str) -> str:
    """Validate an ``algorithm`` knob value and resolve ``"auto"``.

    ``auto`` resolves to ``compiled`` — the bit-for-bit-equal default a
    *single* classification gets unless the caller asks for a specific
    implementation. Callers holding batches resolve through
    :func:`repro.core.batch.resolve_batch_algorithm` instead, where
    ``auto`` picks the vectorized kernel when numpy is available.
    """
    if algorithm not in ALGORITHM_NAMES:
        raise ValueError(
            f"unknown classifier algorithm {algorithm!r} "
            f"(choose one of {ALGORITHM_NAMES})"
        )
    return "compiled" if algorithm == "auto" else algorithm


def classify(
    config: Configuration,
    *,
    count_ops: bool = False,
    counter: Optional[OpCounter] = None,
    algorithm: str = "auto",
) -> ClassifierTrace:
    """Run ``Classifier`` on ``config`` and return the full trace.

    Dispatches on ``algorithm`` (see the module docstring); every
    implementation returns the same trace bit for bit, so callers may
    treat the knob as a pure performance choice.

    Parameters
    ----------
    count_ops:
        meter operations; the total lands in ``trace.total_ops``.
        Reference metering is the Lemma 3.5 O(n³Δ) accounting; compiled
        metering counts the incremental path's actual work. The
        ``fast`` ablation and the ``batch`` kernel do not meter (a
        :class:`ValueError`); ``classifier_ops`` stays pinned to the
        reference units regardless of this knob.
    counter:
        meter into this :class:`~repro.core.partition.OpCounter`
        instead of a fresh one — callers that want the
        ``triple_ops``/``label_ops`` split (e.g. the CLI ``--profile``
        flag) pass one and read it back; implies ``count_ops``.
    algorithm:
        ``"reference"``, ``"fast"``, ``"compiled"``, ``"batch"`` or
        ``"auto"``.
    """
    algorithm = resolve_algorithm(algorithm)
    if _OBS.enabled:  # per-call: guarded, one attribute check when off
        _registry.inc("classifier.calls")
        _registry.inc(f"classifier.calls.{algorithm}")
    if algorithm == "reference":
        return reference_classify(config, count_ops=count_ops, counter=counter)
    if algorithm == "fast":
        if count_ops or counter is not None:
            raise ValueError(
                "the fast classifier does not meter operations; use "
                'algorithm="reference" (Lemma 3.5 units) or "compiled"'
            )
        from .fast_classifier import fast_classify

        return fast_classify(config)
    if algorithm == "batch":
        if count_ops or counter is not None:
            raise ValueError(
                "the batch kernel does not meter operations; use "
                'algorithm="reference" (Lemma 3.5 units) or "compiled"'
            )
        from .batch import batch_classify

        return batch_classify([config])[0]
    from .compiled import compiled_classify

    return compiled_classify(config, count_ops=count_ops, counter=counter)


def reference_classify(
    config: Configuration,
    *,
    count_ops: bool = False,
    counter: Optional[OpCounter] = None,
) -> ClassifierTrace:
    """The faithful O(n³Δ) ``Classifier`` (the paper's Algorithms 1–4).

    The configuration is normalized first (smallest tag shifted to 0,
    w.l.o.g. per Section 2.1); the trace's ``config`` attribute holds the
    normalized configuration. With ``count_ops`` (or an explicit
    ``counter``) triple-level operations are metered in Lemma 3.5 units;
    the total lands in ``trace.total_ops``.
    """
    config = config.normalize()
    nodes = config.nodes
    n = config.n
    if counter is None and count_ops:
        counter = OpCounter()

    # --- Init-Aug (Algorithm 1) ---------------------------------------
    classes = {v: 1 for v in nodes}
    reps: list = [None, nodes[0]]  # 1-based; reps[1] = first node
    num_classes = 1

    trace = ClassifierTrace(
        config=config,
        sigma=config.span,
        initial_classes=dict(classes),
        initial_reps=tuple(reps),
    )

    # --- main loop (Algorithm 4) ----------------------------------------
    max_iters = math.ceil(n / 2)
    for i in range(1, max_iters + 1):
        old_class_count = num_classes

        # Partitioner (Algorithm 3): label every node, then Refine.
        labels = compute_all_labels(config, classes, counter)
        classes, reps, num_classes = refine(
            nodes, classes, labels, reps, num_classes, counter
        )

        trace.iterations.append(
            IterationRecord(
                index=i,
                labels=labels,
                classes_after=dict(classes),
                reps_after=tuple(reps),
                num_classes_after=num_classes,
            )
        )

        single = singleton_classes(classes)
        if single:
            trace.decision = YES
            trace.decided_at = i
            trace.leader_class = single[0]  # the smallest such m (Lemma 3.11)
            trace.leader = reps[single[0]]
            break
        if num_classes == old_class_count:
            trace.decision = NO
            trace.decided_at = i
            break
    else:
        raise ClassifierInvariantError(
            f"Classifier failed to decide within ⌈n/2⌉ = {max_iters} "
            f"iterations on {config!r} — contradicts Lemma 3.4"
        )

    if counter is not None:
        trace.total_ops = counter.total
    return trace


def is_feasible(config: Configuration, *, algorithm: str = "auto") -> bool:
    """Decide feasibility of ``config`` (Theorem 3.17)."""
    return classify(config, algorithm=algorithm).feasible


def classifier_ops(config: Configuration) -> int:
    """Metered operation count of one Classifier run (Lemma 3.5 units).

    Always runs the ``reference`` algorithm: the O(n³Δ) unit-cost
    accounting of the complexity experiments is defined by the faithful
    implementation, whatever the repo-wide default is.
    """
    return classify(config, count_ops=True, algorithm="reference").total_ops


def chosen_leader(
    config: Configuration, *, algorithm: str = "auto"
) -> Optional[object]:
    """The node Classifier isolates (smallest singleton class), or None."""
    trace = classify(config, algorithm=algorithm)
    return trace.leader if trace.feasible else None
