"""The paper's centralized decision algorithm ``Classifier`` (Section 3.1).

Faithful transcription of Algorithms 1–4:

* ``Init-Aug`` — every node starts in class 1 with a null label; the first
  node in the fixed vertex order becomes the class-1 representative.
* ``Partitioner`` — assigns each node the label encoding what it would
  hear during the current phase of the canonical DRIP (one transmission
  block of ``2σ+1`` rounds per class; a neighbour ``w`` of ``v`` lands in
  ``v``'s local round ``σ+1+t_w−t_v`` of block ``w_CLASS``), then refines
  the partition via ``Refine``.
* ``Classifier`` — repeats ``Partitioner`` for at most ``⌈n/2⌉``
  iterations; outputs **Yes** as soon as some class has exactly one node
  and **No** as soon as an iteration fails to increase the class count.

Lemma 3.4 guarantees one of the two exits fires within ``⌈n/2⌉``
iterations, and Theorem 3.17 shows the output equals feasibility of the
input configuration. The full refinement history is returned as a
:class:`~repro.core.trace.ClassifierTrace`, from which the canonical DRIP
is constructed without further computation.
"""

from __future__ import annotations

import math
from typing import Optional

from .configuration import Configuration
from .partition import (
    OpCounter,
    compute_all_labels,
    refine,
    singleton_classes,
)
from .trace import NO, YES, ClassifierTrace, IterationRecord


class ClassifierInvariantError(AssertionError):
    """Internal invariant violation (would contradict Lemma 3.4)."""


def classify(
    config: Configuration,
    *,
    count_ops: bool = False,
) -> ClassifierTrace:
    """Run ``Classifier`` on ``config`` and return the full trace.

    The configuration is normalized first (smallest tag shifted to 0,
    w.l.o.g. per Section 2.1); the trace's ``config`` attribute holds the
    normalized configuration.

    Parameters
    ----------
    count_ops:
        meter triple-level operations (for the O(n³Δ) experiment); the
        total lands in ``trace.total_ops``.
    """
    config = config.normalize()
    nodes = config.nodes
    n = config.n
    counter = OpCounter() if count_ops else None

    # --- Init-Aug (Algorithm 1) ---------------------------------------
    classes = {v: 1 for v in nodes}
    reps: list = [None, nodes[0]]  # 1-based; reps[1] = first node
    num_classes = 1

    trace = ClassifierTrace(
        config=config,
        sigma=config.span,
        initial_classes=dict(classes),
        initial_reps=tuple(reps),
    )

    # --- main loop (Algorithm 4) ----------------------------------------
    max_iters = math.ceil(n / 2)
    for i in range(1, max_iters + 1):
        old_class_count = num_classes

        # Partitioner (Algorithm 3): label every node, then Refine.
        labels = compute_all_labels(config, classes, counter)
        classes, reps, num_classes = refine(
            nodes, classes, labels, reps, num_classes, counter
        )

        trace.iterations.append(
            IterationRecord(
                index=i,
                labels=labels,
                classes_after=dict(classes),
                reps_after=tuple(reps),
                num_classes_after=num_classes,
            )
        )

        single = singleton_classes(classes)
        if single:
            trace.decision = YES
            trace.decided_at = i
            trace.leader_class = single[0]  # the smallest such m (Lemma 3.11)
            trace.leader = reps[single[0]]
            break
        if num_classes == old_class_count:
            trace.decision = NO
            trace.decided_at = i
            break
    else:
        raise ClassifierInvariantError(
            f"Classifier failed to decide within ⌈n/2⌉ = {max_iters} "
            f"iterations on {config!r} — contradicts Lemma 3.4"
        )

    if counter is not None:
        trace.total_ops = counter.total
    return trace


def is_feasible(config: Configuration) -> bool:
    """Decide feasibility of ``config`` (Theorem 3.17)."""
    return classify(config).feasible


def classifier_ops(config: Configuration) -> int:
    """Metered operation count of one Classifier run (Lemma 3.5 units)."""
    return classify(config, count_ops=True).total_ops


def chosen_leader(config: Configuration) -> Optional[object]:
    """The node Classifier isolates (smallest singleton class), or None."""
    trace = classify(config)
    return trace.leader if trace.feasible else None
