"""Classifier execution traces.

The canonical DRIP (Section 3.3.1) is *constructed from* the execution of
``Classifier``: the hard-coded lists ``L_j`` are read off the sequence of
partitions, labels and representatives. ``ClassifierTrace`` records exactly
that sequence, using the paper's indexing convention:

* quantities subscripted ``j`` (``vCLASS,j``, ``numClasses_{G,j}``,
  ``reps_j``, ``vLBL,j``) denote the value *at the end of iteration j−1*
  of ``Classifier`` (iteration 0 = ``Init-Aug``);
* ``iterations[i-1]`` stores the outcome of iteration ``i`` (the i-th
  ``Partitioner`` call), so ``classes_at(j)`` for ``j >= 2`` reads
  ``iterations[j-2]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .partition import (
    Label,
    class_members,
    partition_key,
    singleton_classes,
)

#: Decision strings, matching the paper's output vocabulary.
YES = "Yes"
NO = "No"


@dataclass
class IterationRecord:
    """Outcome of one ``Partitioner`` call (one Classifier iteration)."""

    index: int  #: iteration number i >= 1
    labels: Dict[object, Label]  #: labels assigned during this iteration
    classes_after: Dict[object, int]  #: vCLASS at the end of the iteration
    reps_after: Tuple[Optional[object], ...]  #: 1-based reps (index 0 None)
    num_classes_after: int

    def members(self) -> Dict[int, List[object]]:
        """Class number -> sorted member list after this iteration."""
        return class_members(self.classes_after)


@dataclass
class ClassifierTrace:
    """Complete record of a ``Classifier`` run on one configuration."""

    config: object  #: the (normalized) Configuration classified
    sigma: int
    initial_classes: Dict[object, int]
    initial_reps: Tuple[Optional[object], ...]
    iterations: List[IterationRecord] = field(default_factory=list)
    decision: str = ""  #: YES or NO
    decided_at: int = 0  #: iteration index i at which the decision fired
    leader: Optional[object] = None  #: rep of the smallest singleton class
    leader_class: Optional[int] = None
    total_ops: int = 0  #: OpCounter total, when metering was enabled

    # ------------------------------------------------------------------
    # paper-indexed accessors
    # ------------------------------------------------------------------
    @property
    def feasible(self) -> bool:
        return self.decision == YES

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def classes_at(self, j: int) -> Dict[object, int]:
        """``vCLASS,j`` for all v: classes at the end of iteration j−1."""
        if j < 1 or j > self.num_iterations + 1:
            raise IndexError(f"no partition with index {j}")
        if j == 1:
            return self.initial_classes
        return self.iterations[j - 2].classes_after

    def num_classes_at(self, j: int) -> int:
        """``numClasses_{G,j}``."""
        if j == 1:
            return max(self.initial_classes.values())
        return self.iterations[j - 2].num_classes_after

    def reps_at(self, j: int) -> Tuple[Optional[object], ...]:
        """``reps_j``: representative array at the end of iteration j−1."""
        if j == 1:
            return self.initial_reps
        return self.iterations[j - 2].reps_after

    def labels_at(self, j: int) -> Dict[object, Label]:
        """``vLBL,j``: labels assigned during iteration j−1 (j >= 2)."""
        if j < 2:
            raise IndexError("labels_at is defined for j >= 2 (vLBL,1 is null)")
        return self.iterations[j - 2].labels

    def partition_keys(self) -> List[Tuple]:
        """Numbering-independent partitions for j = 1 .. num_iterations+1."""
        return [
            partition_key(self.classes_at(j))
            for j in range(1, self.num_iterations + 2)
        ]

    def class_count_chain(self) -> List[int]:
        """``numClasses_{G,1}, ..., numClasses_{G, num_iterations+1}``."""
        return [self.num_classes_at(j) for j in range(1, self.num_iterations + 2)]

    def final_classes(self) -> Dict[object, int]:
        """Partition when Classifier stopped (= classes_at(decided_at+1))."""
        return self.classes_at(self.num_iterations + 1)

    def final_singletons(self) -> List[int]:
        """Singleton class numbers of the final partition."""
        return singleton_classes(self.final_classes())

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line rendering of the refinement process (debug/demo)."""
        lines = [
            f"Classifier on n={self.config.n}, σ={self.sigma}: "
            f"{self.decision} after iteration {self.decided_at}"
        ]
        for j in range(1, self.num_iterations + 2):
            members = class_members(self.classes_at(j))
            rendered = ", ".join(
                f"C{k}={vs}" for k, vs in sorted(members.items())
            )
            lines.append(f"  partition_{j}: {rendered}")
        if self.feasible:
            lines.append(
                f"  leader: node {self.leader} (class {self.leader_class})"
            )
        return "\n".join(lines)
