"""High-level facade: one import for the common workflows.

    >>> from repro import Configuration, decide, elect
    >>> cfg = Configuration([(0, 1), (1, 2)], {0: 0, 1: 1, 2: 0})
    >>> report = decide(cfg)
    >>> report.feasible
    True
    >>> elect(cfg).leader
    1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .canonical import CanonicalProtocol
from .classifier import classify
from .configuration import Configuration
from .election import ElectionResult, elect_leader
from .trace import ClassifierTrace


@dataclass
class FeasibilityReport:
    """Answer of the centralized decision algorithm, with provenance."""

    config: Configuration
    trace: ClassifierTrace

    @property
    def feasible(self) -> bool:
        return self.trace.feasible

    @property
    def decision(self) -> str:
        """The paper's output string: ``"Yes"`` or ``"No"``."""
        return self.trace.decision

    @property
    def leader(self) -> Optional[object]:
        """The node the classifier isolates (None when infeasible)."""
        return self.trace.leader

    @property
    def iterations(self) -> int:
        """Partitioner calls executed (≤ ⌈n/2⌉, Lemma 3.4)."""
        return self.trace.num_iterations

    def protocol(self) -> CanonicalProtocol:
        """The dedicated algorithm ``(D_G, f_G)`` for this configuration."""
        return CanonicalProtocol.from_trace(self.trace)

    def describe(self) -> str:
        """Multi-line human-readable report."""
        return self.trace.describe()


def decide(
    config: Configuration, *, algorithm: str = "auto"
) -> FeasibilityReport:
    """Decide feasibility of ``config`` (Theorem 3.17).

    ``algorithm`` selects the classifier implementation
    (``"reference"``, ``"fast"``, ``"compiled"`` or ``"auto"``; see
    :func:`repro.core.classifier.classify`) — every choice returns the
    identical report.
    """
    return FeasibilityReport(
        config=config, trace=classify(config, algorithm=algorithm)
    )


def elect(config: Configuration, **kwargs) -> ElectionResult:
    """Elect a leader on ``config`` with the dedicated algorithm
    (Theorem 3.15). See :func:`repro.core.election.elect_leader`."""
    return elect_leader(config, **kwargs)
