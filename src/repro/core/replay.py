"""Closed-form replay of canonical-DRIP executions.

The round-by-round simulator (:mod:`repro.radio.simulator`) executes the
canonical DRIP in O(global rounds × n) work — and canonical executions
are Θ(n²σ) rounds long, almost all of them silent. But the execution of
``D_G`` is *fully determined* by the classifier trace: Lemma 3.8 says node
``v`` transmits in phase ``P_j`` exactly once, in the (σ+1)-th round of
block ``vCLASS,j``, and Lemma 3.7/Proposition 2.1 place each neighbour
``w``'s transmission at ``v``'s local round

    r_{j-1} + (wCLASS,j − 1)(2σ+1) + (σ+1) + (t_w − t_v).

So every node's complete terminal history can be computed directly —
O(phases × Σ_v deg(v)) work, independent of σ except through the round
*indices* — and the sparse :class:`~repro.radio.history.History` storage
makes the result byte-identical to what the simulator produces.

This module implements that replay twice: a plain-dict reference and a
numpy-vectorized path that batches the per-phase event computation over
all directed edges at once. Both are cross-validated against the real
simulator in the test suite, and the E12 benchmark measures the speedup
(the point of the exercise: the theory of Section 3.3 is sharp enough to
predict the entire execution).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..radio.events import SPONTANEOUS, ExecutionResult
from ..radio.history import History
from ..radio.model import COLLISION, Message
from .canonical import CANONICAL_MESSAGE, CanonicalData, build_canonical_data
from .classifier import classify
from .configuration import Configuration
from .trace import ClassifierTrace


def replay_histories(
    trace: ClassifierTrace,
    *,
    vectorized: bool = True,
) -> Dict[object, History]:
    """Terminal canonical-DRIP history of every node, without simulating.

    ``trace`` must be a completed classifier trace; the histories returned
    are exactly those :func:`repro.radio.simulator.simulate` would produce
    for the canonical protocol of ``trace`` (length ``r_P + 2``: rounds
    ``0 .. done_v`` inclusive, ``done_v = r_P + 1``).
    """
    data = build_canonical_data(trace)
    config = trace.config
    if vectorized and config.num_edges > 0:
        events = _phase_events_numpy(trace, data, config)
    else:
        events = _phase_events_python(trace, data, config)

    histories: Dict[object, History] = {}
    length = data.done_round + 1  # entries 0 .. r_P + 1
    for v in config.nodes:
        h = History()
        h._events = events.get(v, {})
        h._length = length
        histories[v] = h
    return histories


def replay_execution(trace: ClassifierTrace) -> ExecutionResult:
    """Package the replay as an :class:`ExecutionResult` look-alike.

    Canonical executions are patient (Lemma 3.6), so every node wakes
    spontaneously in its tag round and terminates in local round
    ``r_P + 1``; the trace field is None (no per-round records exist —
    nothing was simulated).
    """
    config = trace.config
    data = build_canonical_data(trace)
    histories = replay_histories(trace)
    done = data.done_round
    wake_rounds = {v: config.tag(v) for v in config.nodes}
    max_tag = max(wake_rounds.values())
    return ExecutionResult(
        histories=histories,
        wake_rounds=wake_rounds,
        wake_kinds={v: SPONTANEOUS for v in config.nodes},
        done_local={v: done for v in config.nodes},
        rounds_elapsed=max_tag + done + 1,
        trace=None,
    )


def replay_elect(config: Configuration, trace: Optional[ClassifierTrace] = None):
    """Leaders under ``f_G`` computed via replay (no simulation).

    Returns ``(leaders, histories)``; for feasible configurations the
    leader list has exactly one element (Theorem 3.15).
    """
    from .canonical import CanonicalProtocol

    if trace is None:
        trace = classify(config)
    protocol = CanonicalProtocol.from_trace(trace)
    histories = replay_histories(trace)
    leaders = [
        v for v in sorted(histories) if protocol.decision(histories[v]) == 1
    ]
    return leaders, histories


# ----------------------------------------------------------------------
# event computation
# ----------------------------------------------------------------------
def _phase_events_python(
    trace: ClassifierTrace, data: CanonicalData, config: Configuration
) -> Dict[object, Dict[int, object]]:
    """Reference implementation: plain dicts, one phase at a time."""
    sigma = data.sigma
    width = data.block_width
    tags = {v: config.tag(v) for v in config.nodes}
    events: Dict[object, Dict[int, object]] = {v: {} for v in config.nodes}

    for j in range(1, data.num_phases + 1):
        classes = trace.classes_at(j)
        base = data.phase_ends[j - 1]
        # v's own transmission round this phase (its entry stays silent).
        own_round = {
            v: base + (classes[v] - 1) * width + sigma + 1 for v in config.nodes
        }
        for v in config.nodes:
            counts: Dict[int, int] = {}
            tv = tags[v]
            for w in config.neighbors(v):
                t = base + (classes[w] - 1) * width + sigma + 1 + tags[w] - tv
                counts[t] = counts.get(t, 0) + 1
            mine = own_round[v]
            for t, k in counts.items():
                if t == mine:
                    continue  # v transmits in this round; hears nothing
                events[v][t] = (
                    Message(CANONICAL_MESSAGE) if k == 1 else COLLISION
                )
    return events


def _phase_events_numpy(
    trace: ClassifierTrace, data: CanonicalData, config: Configuration
) -> Dict[object, Dict[int, object]]:
    """Vectorized implementation: all directed edges of a phase at once.

    Builds index arrays once (listener index, transmitter index, tag
    offset per directed edge), then per phase computes every event round
    with two array operations and counts duplicates via ``np.unique``.
    """
    nodes = list(config.nodes)
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)

    listener: List[int] = []
    speaker: List[int] = []
    for v in nodes:
        iv = index[v]
        for w in config.neighbors(v):
            listener.append(iv)
            speaker.append(index[w])
    lst = np.asarray(listener, dtype=np.int64)
    spk = np.asarray(speaker, dtype=np.int64)
    tag_arr = np.asarray([config.tag(v) for v in nodes], dtype=np.int64)
    offset = tag_arr[spk] - tag_arr[lst]  # t_w − t_v per directed edge

    sigma = data.sigma
    width = data.block_width
    events: Dict[object, Dict[int, object]] = {v: {} for v in nodes}
    message = Message(CANONICAL_MESSAGE)

    for j in range(1, data.num_phases + 1):
        classes = trace.classes_at(j)
        cls_arr = np.asarray([classes[v] for v in nodes], dtype=np.int64)
        base = data.phase_ends[j - 1]
        # Local round (at the listener) of each directed-edge transmission.
        t = base + (cls_arr[spk] - 1) * width + sigma + 1 + offset
        own = base + (cls_arr - 1) * width + sigma + 1  # per-node transmit round
        heard = t != own[lst]  # drop rounds in which the listener transmits
        if not heard.any():
            continue
        # Count transmissions per (listener, round) pair.
        key = lst[heard] * np.int64(
            data.done_round + 2 * sigma + 2
        ) + t[heard]
        uniq, counts = np.unique(key, return_counts=True)
        mod = np.int64(data.done_round + 2 * sigma + 2)
        for k, c in zip(uniq.tolist(), counts.tolist()):
            vi, rnd = divmod(k, int(mod))
            events[nodes[vi]][rnd] = message if c == 1 else COLLISION
    return events


# ----------------------------------------------------------------------
# cross-validation helper
# ----------------------------------------------------------------------
def replay_matches_simulation(
    config: Configuration, backend: str = "reference"
) -> bool:
    """True iff the replay agrees with the simulator.

    Compares terminal histories node-for-node; used by tests and the E12
    ablation as a hard correctness gate before timing anything. The
    ``backend`` knob selects which executor to validate against — the
    closed-form replay is an *independent* prediction of the execution,
    so it triangulates both backends against the theory.
    """
    from ..radio.simulator import simulate
    from .canonical import CanonicalProtocol

    trace = classify(config)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    execution = simulate(
        network,
        protocol.factory,
        max_rounds=protocol.round_budget(network.span),
        backend=backend,
    )
    replayed = replay_histories(trace)
    return all(
        replayed[v] == execution.histories[v] for v in network.nodes
    )
