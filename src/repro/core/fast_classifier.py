"""Hash-based classifier: identical outputs, better complexity (ablation).

The paper's ``Refine`` compares every node against every class
representative (O(n²Δ) per iteration → O(n³Δ) total, Lemma 3.5). Nothing
in the correctness argument needs that scan: the assignment rule is
"same (old class, label) pair as an existing representative", which a dict
lookup resolves in expected O(Δ) per node. Likewise the duplicate scan in
label construction (quadratic in the degree) collapses to a counting dict.

``fast_classify`` reproduces **bit-identical** traces — the same class
numbering, the same representatives, the same decision and leader — in
O(nΔ log Δ) per iteration. Experiment E8 quantifies the speedup; the test
suite asserts output equality on thousands of configurations.
"""

from __future__ import annotations

import math
from typing import Dict

from .classifier import ClassifierInvariantError
from .configuration import Configuration
from .partition import Label, ONE, STAR, singleton_classes
from .trace import NO, YES, ClassifierTrace, IterationRecord


def _fast_label(config: Configuration, v: object, classes: Dict[object, int]) -> Label:
    """Counting-dict version of the Partitioner label (same output)."""
    sigma = config.span
    tv = config.tag(v)
    v_class = classes[v]
    counts: Dict[tuple, int] = {}
    for w in config.neighbors(v):
        w_class = classes[w]
        tw = config.tag(w)
        if w_class != v_class or tw != tv:
            key = (w_class, sigma + 1 + tw - tv)
            counts[key] = counts.get(key, 0) + 1
    return tuple(
        (a, b, ONE if c == 1 else STAR) for (a, b), c in sorted(counts.items())
    )


def fast_classify(config: Configuration) -> ClassifierTrace:
    """Drop-in replacement for :func:`repro.core.classifier.classify`.

    Returns a trace equal (field by field, up to the unmetered
    ``total_ops``) to the faithful implementation's.
    """
    config = config.normalize()
    nodes = config.nodes
    n = config.n

    classes = {v: 1 for v in nodes}
    reps: list = [None, nodes[0]]
    num_classes = 1

    trace = ClassifierTrace(
        config=config,
        sigma=config.span,
        initial_classes=dict(classes),
        initial_reps=tuple(reps),
    )

    max_iters = math.ceil(n / 2)
    for i in range(1, max_iters + 1):
        old_class_count = num_classes

        labels = {v: _fast_label(config, v, classes) for v in nodes}

        # Refine via dict lookup. Representative (old class, label) pairs
        # are pairwise distinct, so the mapping is well-defined and yields
        # exactly the paper's class assignment and numbering.
        by_key: Dict[tuple, int] = {}
        for k in range(1, num_classes + 1):
            rep = reps[k]
            by_key[(classes[rep], labels[rep])] = k
        new_classes: Dict[object, int] = {}
        for v in nodes:
            key = (classes[v], labels[v])
            k = by_key.get(key)
            if k is None:
                num_classes += 1
                k = num_classes
                by_key[key] = k
                reps.append(v)
            new_classes[v] = k
        classes = new_classes

        trace.iterations.append(
            IterationRecord(
                index=i,
                labels=labels,
                classes_after=dict(classes),
                reps_after=tuple(reps),
                num_classes_after=num_classes,
            )
        )

        single = singleton_classes(classes)
        if single:
            trace.decision = YES
            trace.decided_at = i
            trace.leader_class = single[0]
            trace.leader = reps[single[0]]
            break
        if num_classes == old_class_count:
            trace.decision = NO
            trace.decided_at = i
            break
    else:
        raise ClassifierInvariantError(
            f"fast_classify failed to decide within ⌈n/2⌉ = {max_iters} "
            f"iterations on {config!r} — contradicts Lemma 3.4"
        )

    return trace


def traces_equal(a: ClassifierTrace, b: ClassifierTrace) -> bool:
    """Field-by-field equality of two traces (ignoring op metering)."""
    if (
        a.decision != b.decision
        or a.decided_at != b.decided_at
        or a.leader != b.leader
        or a.leader_class != b.leader_class
        or a.sigma != b.sigma
        or a.initial_classes != b.initial_classes
        or a.initial_reps != b.initial_reps
        or len(a.iterations) != len(b.iterations)
    ):
        return False
    for ra, rb in zip(a.iterations, b.iterations):
        if (
            ra.index != rb.index
            or ra.labels != rb.labels
            or ra.classes_after != rb.classes_after
            or ra.reps_after != rb.reps_after
            or ra.num_classes_after != rb.num_classes_after
        ):
            return False
    return True
