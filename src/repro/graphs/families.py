"""The paper's named configuration families (Section 4).

* ``G_m`` (Proposition 4.1): a line of ``4m+1`` nodes
  ``a_1..a_m, b_1..b_{2m+1}, c_m..c_1`` with tags 0 on the ``a``/``c``
  nodes and 1 on the ``b`` nodes. Feasible with span 1; every dedicated
  leader election algorithm needs Ω(n) rounds (symmetry around the centre
  ``b_{m+1}`` takes ~m rounds to break).
* ``H_m`` (Lemma 4.2): the 4-node line ``a, b, c, d`` with tags
  ``m, 0, 0, m+1``. Feasible for every ``m >= 1``; every leader election
  algorithm needs at least ``m`` rounds (Ω(σ), Proposition 4.3).
* ``S_m`` (Proposition 4.5): the 4-node line ``a, b, c, d`` with tags
  ``m, 0, 0, m``. **Infeasible** for every ``m >= 1`` (mirror symmetry),
  yet indistinguishable from ``H_m`` to every node until round ``m`` —
  the engine of the no-distributed-decision proof.

Node ids are integers 0..n−1 left to right; ``*_names`` helpers recover
the paper's letter names.
"""

from __future__ import annotations

from typing import Dict

from ..core.configuration import Configuration, line_configuration


def g_m(m: int) -> Configuration:
    """Proposition 4.1 line configuration ``G_m`` (requires ``m >= 2``)."""
    if m < 2:
        raise ValueError("G_m is defined for m >= 2")
    tags = [0] * m + [1] * (2 * m + 1) + [0] * m
    return line_configuration(tags)


def g_m_size(m: int) -> int:
    """Number of nodes of ``G_m``."""
    return 4 * m + 1


def g_m_center(m: int) -> int:
    """Node id of the centre ``b_{m+1}`` (the node Classifier isolates)."""
    return 2 * m  # m a-nodes, then b_1..b_m, then b_{m+1} at index 2m


def g_m_names(m: int) -> Dict[int, str]:
    """Map node id -> paper name (``a_i`` / ``b_i`` / ``c_i``)."""
    names = {}
    for i in range(m):
        names[i] = f"a{i + 1}"
    for i in range(2 * m + 1):
        names[m + i] = f"b{i + 1}"
    for i in range(m):
        names[3 * m + 1 + i] = f"c{m - i}"
    return names


def h_m(m: int) -> Configuration:
    """Lemma 4.2 configuration ``H_m``: line a,b,c,d tagged m,0,0,m+1."""
    if m < 1:
        raise ValueError("H_m is defined for m >= 1")
    return line_configuration([m, 0, 0, m + 1])


def s_m(m: int) -> Configuration:
    """Proposition 4.5 configuration ``S_m``: line a,b,c,d tagged m,0,0,m.

    Infeasible (the mirror automorphism fixes no node)."""
    if m < 1:
        raise ValueError("S_m is defined for m >= 1")
    return line_configuration([m, 0, 0, m])


#: Paper names of the 4-node-line nodes used by ``h_m`` and ``s_m``.
FOUR_NODE_NAMES = {0: "a", 1: "b", 2: "c", 3: "d"}
