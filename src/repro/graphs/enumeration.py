"""Exhaustive enumeration of small configurations.

Experiment E1 cross-validates ``Classifier`` against independent ground
truths on *every* small configuration: all connected graphs on up to
``n`` nodes (one representative per isomorphism class, via the networkx
graph atlas) crossed with all normalized tag vectors up to a given span.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Tuple

from ..core.configuration import Configuration
from .tags import all_tag_vectors

Edge = Tuple[int, int]


def connected_graphs(n: int) -> List[List[Edge]]:
    """Edge lists of all connected graphs on exactly ``n`` labeled nodes,
    one per isomorphism class (n <= 7; atlas-backed for speed).

    Uses ``networkx.graph_atlas_g`` when available and falls back to
    brute-force enumeration with isomorphism filtering.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if n > 7:
        raise ValueError("exhaustive enumeration supported for n <= 7")
    import networkx as nx

    if n == 1:
        return [[]]
    try:
        from networkx.generators.atlas import graph_atlas_g
    except ImportError:  # pragma: no cover - atlas ships with networkx
        return _brute_force_connected(n)

    out: List[List[Edge]] = []
    for g in graph_atlas_g():
        if g.number_of_nodes() == n and nx.is_connected(g):
            # Relabel to 0..n-1 (atlas graphs already use that labeling).
            out.append(sorted(tuple(sorted(e)) for e in g.edges()))
    return out


def _brute_force_connected(n: int) -> List[List[Edge]]:
    """All connected graphs on n labeled nodes, deduplicated by
    isomorphism (exponential; fine for n <= 6)."""
    import networkx as nx

    if n == 1:
        return [[]]
    all_pairs = list(combinations(range(n), 2))
    seen: List = []
    out: List[List[Edge]] = []
    for mask in range(1 << len(all_pairs)):
        edges = [all_pairs[i] for i in range(len(all_pairs)) if mask >> i & 1]
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        if not nx.is_connected(g):
            continue
        if any(nx.is_isomorphic(g, h) for h in seen):
            continue
        seen.append(g)
        out.append(sorted(edges))
    return out


def all_labeled_connected_graphs(n: int) -> List[List[Edge]]:
    """All connected graphs on n labeled nodes **without** isomorphism
    deduplication (needed when tags break symmetry differently per
    labeling). Exponential; intended for n <= 5."""
    import networkx as nx

    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return [[]]
    if n > 5:
        raise ValueError("labeled enumeration supported for n <= 5")
    all_pairs = list(combinations(range(n), 2))
    out: List[List[Edge]] = []
    for mask in range(1 << len(all_pairs)):
        edges = [all_pairs[i] for i in range(len(all_pairs)) if mask >> i & 1]
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        if nx.is_connected(g):
            out.append(edges)
    return out


def enumerate_configurations(
    n: int, max_tag: int, *, labeled: bool = False
) -> Iterator[Configuration]:
    """Yield every configuration with ``n`` nodes and normalized tags in
    ``0..max_tag``.

    With ``labeled=False`` the graph shapes are isomorphism-class
    representatives (tags still range over all vectors, which covers most
    of the interesting asymmetry); with ``labeled=True`` every labeled
    connected graph is used (exact exhaustiveness, much larger).
    """
    shapes = (
        all_labeled_connected_graphs(n) if labeled else connected_graphs(n)
    )
    for edges in shapes:
        for vec in all_tag_vectors(n, max_tag):
            yield Configuration(edges, {i: vec[i] for i in range(n)})


def count_configurations(n: int, max_tag: int, *, labeled: bool = False) -> int:
    """Number of configurations :func:`enumerate_configurations` yields."""
    return sum(1 for _ in enumerate_configurations(n, max_tag, labeled=labeled))


def enumerate_nonisomorphic_configurations(n: int, max_tag: int):
    """Like :func:`enumerate_configurations`, but yields one representative
    per tag-preserving isomorphism class (using
    :func:`repro.analysis.isomorphism.canonical_form` for dedup) — the
    exact population for census statistics that should not overcount
    relabelings."""
    from ..analysis.isomorphism import canonical_form

    seen = set()
    for cfg in enumerate_configurations(n, max_tag):
        key = canonical_form(cfg)
        if key not in seen:
            seen.add(key)
            yield cfg
