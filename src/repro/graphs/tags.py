"""Wakeup-tag assignment strategies.

Tags are the only symmetry-breaking resource in the model, so experiment
workloads sweep both the graph shape *and* the tag pattern. All random
strategies take explicit seeds.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence


def all_zero(nodes: Sequence[int]) -> Dict[int, int]:
    """Everyone wakes together — infeasible for n >= 2 (Section 1.1)."""
    return {v: 0 for v in nodes}


def distinct_tags(nodes: Sequence[int]) -> Dict[int, int]:
    """Node ``i`` (in sorted order) gets tag ``i`` — maximal asymmetry."""
    return {v: i for i, v in enumerate(sorted(nodes))}


def uniform_random(nodes: Sequence[int], span: int, seed: int) -> Dict[int, int]:
    """Independent uniform tags in ``0..span``."""
    if span < 0:
        raise ValueError("span must be >= 0")
    rng = random.Random(seed)
    return {v: rng.randint(0, span) for v in sorted(nodes)}


def one_early_riser(nodes: Sequence[int], late: int = 1) -> Dict[int, int]:
    """The first node wakes at 0, everyone else at ``late`` — the simplest
    feasible pattern on most graphs (the early riser becomes leader)."""
    if late < 1:
        raise ValueError("late must be >= 1")
    ordered = sorted(nodes)
    tags = {v: late for v in ordered}
    tags[ordered[0]] = 0
    return tags


def blocks(nodes: Sequence[int], block_sizes: Sequence[int]) -> Dict[int, int]:
    """Consecutive blocks of nodes share a tag: block ``i`` gets tag ``i``.

    ``sum(block_sizes)`` must equal the node count.
    """
    ordered = sorted(nodes)
    if sum(block_sizes) != len(ordered):
        raise ValueError("block sizes must sum to the number of nodes")
    tags: Dict[int, int] = {}
    idx = 0
    for tag, size in enumerate(block_sizes):
        for _ in range(size):
            tags[ordered[idx]] = tag
            idx += 1
    return tags


def mirrored_line_tags(half: Sequence[int], middle: Sequence[int]) -> List[int]:
    """Tags for a palindromic line: ``half + middle + reversed(half)``.

    Handy for constructing symmetric (usually infeasible) lines in tests.
    """
    return list(half) + list(middle) + list(reversed(half))


def staircase(nodes: Sequence[int], step: int = 1, width: int = 1) -> Dict[int, int]:
    """Groups of ``width`` consecutive nodes; each group wakes ``step``
    rounds after the previous one (a rolling wavefront)."""
    if step < 0 or width < 1:
        raise ValueError("need step >= 0 and width >= 1")
    ordered = sorted(nodes)
    return {v: (i // width) * step for i, v in enumerate(ordered)}


def alternating(nodes: Sequence[int], low: int = 0, high: int = 1) -> Dict[int, int]:
    """Tags alternate low/high along the sorted node order — the maximal
    number of wakeup *boundaries* at span ``high − low``."""
    if high < low:
        raise ValueError("need high >= low")
    ordered = sorted(nodes)
    return {v: (low if i % 2 == 0 else high) for i, v in enumerate(ordered)}


def bfs_layers(config, root, *, step: int = 1) -> Dict[object, int]:
    """Tag = ``step × (BFS distance from root)`` — wakeups ripple outward
    from a chosen epicentre. Takes a built configuration (needs adjacency).
    """
    if step < 0:
        raise ValueError("step must be >= 0")
    from collections import deque

    dist = {root: 0}
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for w in config.neighbors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                queue.append(w)
    if len(dist) != len(config.nodes):
        raise ValueError("root does not reach every node")
    return {v: step * d for v, d in dist.items()}


def single_sleeper(nodes: Sequence[int], sleeper_index: int = -1, late: int = 1
                   ) -> Dict[int, int]:
    """Everyone wakes at 0 except one node at ``late`` — the dual of
    :func:`one_early_riser` (the sleeper is woken by its neighbours)."""
    if late < 1:
        raise ValueError("late must be >= 1")
    ordered = sorted(nodes)
    tags = {v: 0 for v in ordered}
    tags[ordered[sleeper_index]] = late
    return tags


def clustered(
    nodes: Sequence[int], num_clusters: int, span: int, seed: int
) -> Dict[int, int]:
    """Random cluster assignment; all nodes of a cluster share a random
    tag in ``0..span``. Models correlated wakeups (e.g. one power switch
    per rack) — fewer distinct tags than :func:`uniform_random`."""
    if num_clusters < 1:
        raise ValueError("need at least one cluster")
    if span < 0:
        raise ValueError("span must be >= 0")
    rng = random.Random(seed)
    cluster_tag = [rng.randint(0, span) for _ in range(num_clusters)]
    return {v: cluster_tag[rng.randrange(num_clusters)] for v in sorted(nodes)}


def all_tag_vectors(n: int, max_tag: int):
    """Yield every tag vector in ``{0..max_tag}^n`` with min tag 0.

    Normalized representatives only (shift-equivalent vectors are
    operationally identical), so exhaustive small-case experiments don't
    re-test shifted duplicates.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if max_tag < 0:
        raise ValueError("max_tag must be >= 0")

    vec = [0] * n

    def rec(i: int):
        if i == n:
            if min(vec) == 0:
                yield tuple(vec)
            return
        for t in range(max_tag + 1):
            vec[i] = t
            yield from rec(i + 1)

    yield from rec(0)
