"""Graph-shape generators for benchmark workloads.

Each generator returns the *edge list* and node set 0..n−1; combine with a
tag strategy from :mod:`repro.graphs.tags` (or pass tags directly) to get a
:class:`~repro.core.configuration.Configuration`. All random generation is
seeded — experiments must be reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.configuration import Configuration

Edge = Tuple[int, int]


def path_edges(n: int) -> List[Edge]:
    """Path ``0 - 1 - ... - n-1``."""
    _check_n(n)
    return [(i, i + 1) for i in range(n - 1)]


def cycle_edges(n: int) -> List[Edge]:
    """Cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    return [(i, (i + 1) % n) for i in range(n)]


def star_edges(n: int) -> List[Edge]:
    """Star with centre 0 and ``n-1`` leaves."""
    _check_n(n)
    return [(0, i) for i in range(1, n)]


def complete_edges(n: int) -> List[Edge]:
    """Complete graph ``K_n`` (the single-hop radio network)."""
    _check_n(n)
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


def grid_edges(rows: int, cols: int) -> List[Edge]:
    """``rows × cols`` grid; node ``(r, c)`` has id ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return edges


def binary_tree_edges(n: int) -> List[Edge]:
    """Complete-ish binary tree with heap indexing (node 0 the root)."""
    _check_n(n)
    return [((i - 1) // 2, i) for i in range(1, n)]


def caterpillar_edges(spine: int, legs_per_node: int) -> List[Edge]:
    """A spine path with ``legs_per_node`` pendant leaves per spine node."""
    if spine < 1 or legs_per_node < 0:
        raise ValueError("need spine >= 1 and legs_per_node >= 0")
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            edges.append((s, nxt))
            nxt += 1
    return edges


def random_tree_edges(n: int, seed: int) -> List[Edge]:
    """Uniform random labeled tree via a random Prüfer sequence."""
    _check_n(n)
    if n == 1:
        return []
    if n == 2:
        return [(0, 1)]
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    edges: List[Edge] = []
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    w = heapq.heappop(leaves)
    edges.append((u, w))
    return edges


def random_connected_gnp_edges(n: int, p: float, seed: int) -> List[Edge]:
    """G(n, p) conditioned on connectivity: a random spanning tree plus
    each remaining pair independently with probability ``p``.

    (Exact rejection sampling of connected G(n,p) is exponentially slow at
    small ``p``; the tree-plus-noise construction is the standard
    benchmark-workload substitute and keeps edge density ~``p``.)
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = random.Random(seed)
    edges = set(map(_norm, random_tree_edges(n, rng.randrange(2**31))))
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) not in edges and rng.random() < p:
                edges.add((i, j))
    return sorted(edges)


def hypercube_edges(dim: int) -> List[Edge]:
    """The ``dim``-dimensional hypercube ``Q_dim`` (n = 2^dim nodes)."""
    if dim < 0:
        raise ValueError("dimension must be >= 0")
    n = 1 << dim
    return [
        (v, v ^ (1 << b)) for v in range(n) for b in range(dim) if v < v ^ (1 << b)
    ]


def torus_edges(rows: int, cols: int) -> List[Edge]:
    """``rows × cols`` torus (grid with wraparound); needs both dims ≥ 3
    to stay simple (no parallel edges)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows >= 3 and cols >= 3")
    edges = set()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            edges.add(_norm((v, r * cols + (c + 1) % cols)))
            edges.add(_norm((v, ((r + 1) % rows) * cols + c)))
    return sorted(edges)


def complete_bipartite_edges(a: int, b: int) -> List[Edge]:
    """``K_{a,b}``: left part ``0..a-1``, right part ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise ValueError("both parts must be non-empty")
    return [(i, a + j) for i in range(a) for j in range(b)]


def wheel_edges(n: int) -> List[Edge]:
    """Wheel: hub 0 joined to an ``(n-1)``-cycle; needs n ≥ 4."""
    if n < 4:
        raise ValueError("a wheel needs at least 4 nodes")
    rim = list(range(1, n))
    edges = [(0, v) for v in rim]
    edges += [
        _norm((rim[i], rim[(i + 1) % len(rim)])) for i in range(len(rim))
    ]
    return sorted(set(edges))


def circulant_edges(n: int, offsets: Sequence[int]) -> List[Edge]:
    """Circulant graph ``C_n(offsets)``: ``i ~ i ± d`` for each offset d."""
    _check_n(n)
    edges = set()
    for d in offsets:
        d %= n
        if d == 0:
            raise ValueError("offset 0 would create self-loops")
        for i in range(n):
            edges.add(_norm((i, (i + d) % n)))
    return sorted(edges)


def barbell_edges(k: int) -> List[Edge]:
    """Two ``K_k`` cliques joined by one bridge edge (n = 2k); k ≥ 3."""
    if k < 3:
        raise ValueError("barbell needs cliques of size >= 3")
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    edges += [(k + i, k + j) for i in range(k) for j in range(i + 1, k)]
    edges.append((k - 1, k))
    return edges


def lollipop_edges(k: int, tail: int) -> List[Edge]:
    """A ``K_k`` clique with a ``tail``-node path hanging off node k−1."""
    if k < 3 or tail < 1:
        raise ValueError("lollipop needs k >= 3 and tail >= 1")
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    prev = k - 1
    for t in range(tail):
        edges.append((prev, k + t))
        prev = k + t
    return edges


def double_star_edges(a: int, b: int) -> List[Edge]:
    """Two adjacent hubs (0 and 1) with ``a`` and ``b`` leaves each."""
    if a < 0 or b < 0:
        raise ValueError("leaf counts must be >= 0")
    edges = [(0, 1)]
    nxt = 2
    for _ in range(a):
        edges.append((0, nxt))
        nxt += 1
    for _ in range(b):
        edges.append((1, nxt))
        nxt += 1
    return edges


def spider_edges(legs: int, leg_length: int) -> List[Edge]:
    """``legs`` paths of ``leg_length`` nodes glued at a hub (node 0)."""
    if legs < 1 or leg_length < 1:
        raise ValueError("need legs >= 1 and leg_length >= 1")
    edges = []
    nxt = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            edges.append((prev, nxt))
            prev = nxt
            nxt += 1
    return edges


def random_regular_edges(n: int, d: int, seed: int) -> List[Edge]:
    """Random ``d``-regular simple connected graph via repeated
    pairing-model sampling (rejects multi-edges, loops and disconnected
    outcomes; retries deterministically from the seed)."""
    if d < 2 or n <= d or (n * d) % 2 != 0:
        raise ValueError("need 2 <= d < n with n*d even")
    rng = random.Random(seed)
    for _attempt in range(1000):
        stubs = [v for v in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or _norm((u, v)) in edges:
                ok = False
                break
            edges.add(_norm((u, v)))
        if ok and _is_connected(n, edges):
            return sorted(edges)
    raise RuntimeError(
        f"failed to sample a connected {d}-regular graph on {n} nodes"
    )


def _is_connected(n: int, edges) -> bool:
    adj: Dict[int, List[int]] = {v: [] for v in range(n)}
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    seen = {0}
    stack = [0]
    while stack:
        v = stack.pop()
        for w in adj[v]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == n


def _norm(e: Edge) -> Edge:
    u, v = e
    return (u, v) if u < v else (v, u)


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError("need at least one node")


# ----------------------------------------------------------------------
# configuration builders
# ----------------------------------------------------------------------
def build(
    edges: Sequence[Edge],
    tags: Mapping[int, int] = None,
    *,
    n: Optional[int] = None,
) -> Configuration:
    """Assemble a configuration from an edge list and a tag mapping.

    When ``tags`` is None all nodes get tag 0 (useful for labeled or
    randomized baselines, where wakeup symmetry breaking is not needed).
    """
    if n is None:
        n = max((max(e) for e in edges), default=0) + 1
    if tags is None:
        tags = {v: 0 for v in range(n)}
    return Configuration(edges, dict(tags))


def path_configuration(tags: Sequence[int]) -> Configuration:
    """Path with explicit left-to-right tags."""
    return build(path_edges(len(tags)), {i: t for i, t in enumerate(tags)})


def cycle_configuration(tags: Sequence[int]) -> Configuration:
    """Cycle with explicit tags in node order."""
    return build(cycle_edges(len(tags)), {i: t for i, t in enumerate(tags)})


def complete_configuration(tags: Sequence[int]) -> Configuration:
    """Complete graph (single-hop network) with explicit tags."""
    return build(complete_edges(len(tags)), {i: t for i, t in enumerate(tags)})


def star_configuration(tags: Sequence[int]) -> Configuration:
    """Star with centre 0 and explicit tags in node order."""
    return build(star_edges(len(tags)), {i: t for i, t in enumerate(tags)})
