"""Batch classification core: asyncio dispatcher + sync facade.

The service turns many independent ``decide``/``elect`` requests into
few engine calls:

1. **Warm hits** — every submitted configuration is normalized and keyed
   (:mod:`repro.engine.keys`); if the shared
   :class:`~repro.engine.cache.ResultCache` already holds a sufficient
   record the ticket resolves immediately, with no queueing or
   classification.
2. **Batching** — cold misses enter a *bounded* :class:`asyncio.Queue`.
   A single dispatcher coroutine drains it into batches (up to
   ``max_batch`` items, waiting at most ``batch_window`` seconds for
   stragglers) and classifies each batch through the engine's
   batch-lookup hook :func:`repro.engine.batch_records` — which
   coalesces duplicate keys inside the batch, answers records cached
   since submission, classifies only the unique remainder (optionally
   fanned out over the process pool), and writes results back to the
   cache for every later request.
3. **Backpressure** — when the queue holds ``max_pending`` items,
   ``submit`` blocks (the async core awaits; the sync facade's
   ``submit`` call does not return) until the dispatcher drains. Memory
   is bounded by ``max_pending`` plus one in-flight batch; producers are
   slowed instead of the process growing without bound.

Determinism: record values come from :func:`repro.engine.census_record`
via the cache, so a response is a pure function of the configuration and
mode — independent of batch composition, arrival order, cache warmth,
and worker count — and bit-for-bit equal to serial
:func:`repro.core.feasibility.decide` / ``elect`` reports
(:func:`repro.service.schema.serial_report`).

    >>> from repro.core.configuration import Configuration
    >>> from repro.service import BatchClassifier
    >>> with BatchClassifier() as svc:
    ...     tickets = [svc.submit(Configuration([(0, 1)], {0: 0, 1: s}))
    ...                for s in (1, 2, 3)]
    ...     [t.result()["feasible"] for t in tickets]
    [True, True, True]
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.classifier import resolve_algorithm
from ..core.configuration import Configuration
from ..engine.cache import ResultCache
from ..engine.keys import Keyer, default_keyer
from ..engine.pipeline import EngineStats, batch_records, record_sufficient
from ..obs.runtime import STATE as _OBS
from ..obs.runtime import registry as _registry
from ..obs.runtime import span as _obs_span
from .schema import MODES, record_to_report

#: Registry heartbeat name of the dispatcher loop (see ``/metrics``).
DISPATCHER_HEARTBEAT = "service.dispatcher"


def keys_digest(keys: Sequence[str]) -> str:
    """Short stable digest of a request/batch key set (12 hex chars).

    The correlation token between the server's request spans and the
    dispatcher's ``service.batch`` spans: both sides stamp the digest of
    the keys they carry into their span attrs and structured logs, so a
    request can be matched to the batch that classified it without the
    two sharing any in-process state. Order-insensitive (keys are
    sorted first).
    """
    h = hashlib.sha256("\n".join(sorted(keys)).encode("utf-8"))
    return h.hexdigest()[:12]


class ServiceClosedError(RuntimeError):
    """Submit was called on a closed :class:`BatchClassifier`."""


class ServiceSaturatedError(RuntimeError):
    """Admission was refused: the cold-miss queue cannot take the batch.

    Raised by the non-blocking admission path
    (:meth:`BatchClassifier.schedule_admit`) when a request batch holds
    more cache misses than the bounded queue has free slots. Where the
    blocking ``submit`` path would *stall* the caller (backpressure),
    admission converts saturation into an immediate, explicit error the
    HTTP server maps to ``429 Too Many Requests`` + ``Retry-After``.
    """

    def __init__(
        self, pending: int, capacity: int, needed: int, retry_after: float = 1.0
    ) -> None:
        super().__init__(
            f"queue saturated: {needed} cold item(s) will not fit "
            f"({pending}/{capacity} pending); retry in {retry_after:g}s"
        )
        self.pending = pending  #: queued cold misses at refusal time
        self.capacity = capacity  #: the queue bound (``max_pending``)
        self.needed = needed  #: cold slots the refused batch required
        self.retry_after = retry_after  #: suggested client backoff, seconds


class ServiceUnresponsiveError(RuntimeError):
    """A timed wait on the dispatcher expired (or its loop is dead).

    Distinguishes "the service is busy" from "the service will never
    answer": the message carries the dispatcher thread's liveness and
    the queue state at the moment of the timeout, so a hung caller gets
    a diagnosis instead of an opaque ``TimeoutError`` — or, worse, the
    pre-fix behavior of blocking forever on a dead event loop.
    """


@dataclass
class ServiceStats:
    """Accounting for one classifier instance.

    ``engine`` carries the cache/coalescing counters
    (:class:`~repro.engine.pipeline.EngineStats`); the remaining fields
    count service-level events.
    """

    engine: EngineStats = field(default_factory=EngineStats)
    submitted: int = 0  #: tickets issued
    fast_hits: int = 0  #: resolved at submit time, bypassing the queue
    batches: int = 0  #: dispatcher batches executed
    largest_batch: int = 0  #: most items ever drained into one batch
    rejected: int = 0  #: requests refused by saturation admission control
    cancelled: int = 0  #: queued items abandoned before classification

    def describe(self) -> str:
        """One-line summary for CLI footers and ``/stats``."""
        e = self.engine
        return (
            f"service: {self.submitted} requests, {self.fast_hits} fast hits, "
            f"{self.batches} batch(es) (largest {self.largest_batch}), "
            f"{e.classified} classified, {e.cache_hits} cache hits, "
            f"{e.deduped} coalesced"
        )

    def as_dict(self) -> Dict:
        """JSON-ready service-level counters (nested under ``service``
        in response ``meta``)."""
        return {
            "submitted": self.submitted,
            "fast_hits": self.fast_hits,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
        }


@dataclass(frozen=True)
class Ticket:
    """Handle for one submitted request (submit/gather semantics)."""

    mode: str
    key: str
    future: Future  #: resolves to the engine record dict

    def result(self, timeout: Optional[float] = None) -> Dict:
        """Block until classified; returns the engine record.

        The record is a *copy*: the cache's entry is shared by every
        coalesced request (and by census runs against the same file),
        so callers get a dict they may freely mutate without poisoning
        anyone else's responses.
        """
        return dict(self.future.result(timeout))

    def report(self, timeout: Optional[float] = None) -> Dict:
        """Block until classified; returns the mode-shaped wire report."""
        return record_to_report(self.result(timeout), self.mode)

    def done(self) -> bool:
        """True once the record is available (or the request failed)."""
        return self.future.done()

    def cancel(self) -> bool:
        """Abandon a still-pending request (deadline/disconnect unwind).

        Returns True when the underlying future was cancelled before
        the dispatcher resolved it. A cancelled item that is still in
        the queue is dropped by the dispatcher without being classified
        — this is how the HTTP server's per-request deadline frees its
        batcher slots. Cancelling an already-resolved ticket is a
        harmless no-op (returns False).
        """
        return self.future.cancel()


@dataclass(frozen=True)
class _Item:
    """One queued cold miss."""

    config: Configuration  #: normalized
    key: str
    measure_rounds: bool
    future: Future


class _AsyncBatchCore:
    """The asyncio side: bounded queue + dispatcher loop.

    Runs entirely on one event loop (the facade hosts it on a daemon
    thread). Results travel through thread-safe
    :class:`concurrent.futures.Future` objects so synchronous callers
    can wait on them directly; async callers can wrap a ticket's future
    with :func:`asyncio.wrap_future`.
    """

    def __init__(
        self,
        cache: ResultCache,
        stats: ServiceStats,
        *,
        keyer: Keyer,
        max_batch: int,
        max_pending: int,
        batch_window: float,
        max_workers: Optional[int],
        chunksize: int,
        algorithm: str,
        on_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.cache = cache
        self.stats = stats
        self.keyer = keyer
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.batch_window = batch_window
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.algorithm = algorithm
        self.on_batch = on_batch
        # Created lazily on the loop thread (see _ensure_queue): on
        # Python 3.9 an asyncio.Queue binds the *constructing* thread's
        # event loop, so building it here — on the facade's caller
        # thread — would wire it to the wrong loop (or none at all).
        self.queue: "Optional[asyncio.Queue[Optional[_Item]]]" = None
        self._stop_requested = False
        # Enqueue coroutines currently executing (possibly suspended on
        # a full queue). The dispatcher only exits when a requested stop
        # finds no in-flight producer and an empty queue: a sentinel can
        # overtake the later puts of a backpressure-suspended
        # enqueue_many (each re-await joins the waiter FIFO behind it),
        # so "saw the sentinel" alone must never terminate the loop.
        self._inflight = 0

    @contextmanager
    def _track_inflight(self):
        """Count a producer as in-flight for the scope, releasing the
        shutdown wake-up sentinel when the last one finishes.

        This is the subtle half of the drained-shutdown contract (see
        :meth:`run`): the dispatcher may be parked in ``queue.get()``
        waiting for in-flight producers to finish, so the last one out
        must wake it.
        """
        self._inflight += 1
        try:
            yield
        finally:
            self._inflight -= 1
            if self._stop_requested and self._inflight == 0:
                try:
                    self._ensure_queue().put_nowait(None)
                except asyncio.QueueFull:
                    pass  # dispatcher is mid-drain and will re-check

    def _ensure_queue(self) -> "asyncio.Queue[Optional[_Item]]":
        """The pending queue, created on first use.

        Only ever called from coroutines running on the dispatcher's
        loop, so the queue always binds that loop regardless of which
        thread built the facade (and of the Python version's Queue
        loop-binding behavior).
        """
        if self.queue is None:
            self.queue = asyncio.Queue(maxsize=self.max_pending)
        return self.queue

    async def enqueue(self, config: Configuration, mode: str) -> Ticket:
        """Key a request; resolve warm hits inline, queue cold misses.

        Awaits — exerting backpressure on the submitter — while the
        pending queue is full.
        """
        with self._track_inflight():
            normalized = config.normalize()
            key = self.keyer(normalized)
            measure_rounds = mode == "elect"
            future: Future = Future()
            self.stats.submitted += 1
            record = self.cache.get(key)
            if record_sufficient(record, measure_rounds):
                self.stats.fast_hits += 1
                self.stats.engine.cache_hits += 1
                future.set_result(record)
            else:
                await self._ensure_queue().put(
                    _Item(normalized, key, measure_rounds, future)
                )
            return Ticket(mode=mode, key=key, future=future)

    async def enqueue_many(
        self, configs: Sequence[Configuration], mode: str
    ) -> List[Ticket]:
        """Vectorized :meth:`enqueue`: one loop round-trip for a whole
        batch of requests (the facade's ``submit_many`` fast path).

        Holds its own in-flight guard for the *whole* batch: the
        per-item counter in :meth:`enqueue` drops to zero between
        items, which would otherwise let a concurrent shutdown conclude
        that no producer is mid-batch.
        """
        with self._track_inflight():
            return [await self.enqueue(cfg, mode) for cfg in configs]

    async def admit_many(
        self,
        configs: Sequence[Configuration],
        mode: str,
        retry_after: float = 1.0,
    ) -> List[Ticket]:
        """Admission-controlled :meth:`enqueue_many`: never blocks.

        Where ``enqueue``/``enqueue_many`` *await* a full queue
        (backpressure), this path refuses outright: the whole batch is
        keyed and looked up first, and if its cold misses exceed the
        queue's free slots a :class:`ServiceSaturatedError` is raised
        — atomically, before any item is queued or any ticket issued,
        so a refused batch leaves no partial state behind. There are no
        awaits between the capacity check and the puts (``put_nowait``),
        which makes check-then-admit race-free on the dispatcher loop.
        """
        with self._track_inflight():
            measure_rounds = mode == "elect"
            prepared = []  # (normalized config, key, warm record | None)
            for config in configs:
                normalized = config.normalize()
                key = self.keyer(normalized)
                record = self.cache.get(key)
                if not record_sufficient(record, measure_rounds):
                    record = None
                prepared.append((normalized, key, record))
            queue = self._ensure_queue()
            cold = sum(1 for _, _, record in prepared if record is None)
            free = self.max_pending - queue.qsize()
            if cold > free:
                self.stats.rejected += len(prepared)
                raise ServiceSaturatedError(
                    pending=queue.qsize(),
                    capacity=self.max_pending,
                    needed=cold,
                    retry_after=retry_after,
                )
            tickets: List[Ticket] = []
            for normalized, key, record in prepared:
                future: Future = Future()
                self.stats.submitted += 1
                if record is not None:
                    self.stats.fast_hits += 1
                    self.stats.engine.cache_hits += 1
                    future.set_result(record)
                else:
                    queue.put_nowait(
                        _Item(normalized, key, measure_rounds, future)
                    )
                tickets.append(Ticket(mode=mode, key=key, future=future))
            return tickets

    async def _drain_batch(self, first: _Item) -> List[_Item]:
        """Collect up to ``max_batch`` items, waiting ``batch_window``
        for stragglers after the queue momentarily empties."""
        batch = [first]
        queue = self._ensure_queue()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.batch_window
        while len(batch) < self.max_batch:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if item is None:  # shutdown sentinel mid-drain: note and finish
                self._stop_requested = True
                break
            batch.append(item)
        return batch

    def _classify(self, batch: Sequence[_Item]) -> None:
        """Classify one drained batch and resolve its futures.

        ``decide`` and ``elect`` items are classified in separate
        sub-batches so a cheap decision request never pays for another
        request's election simulation. The elect sub-batch runs first:
        a rounds-bearing record satisfies a later decide lookup of the
        same key, while the reverse order would classify such a key
        twice (once without rounds, once upgrading).
        """
        self.stats.batches += 1
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        if self.on_batch is not None:
            self.on_batch(len(batch))
        # Items cancelled while queued (request deadline, client
        # disconnect) are dropped here: their queue slot was freed by
        # the drain, and skipping them keeps abandoned work from
        # occupying the classifier. The registry counter is
        # unconditional (low-frequency) so /metrics sees abandonment
        # without tracing being on.
        live = [it for it in batch if not it.future.cancelled()]
        dropped = len(batch) - len(live)
        self.stats.cancelled += dropped
        if dropped:
            _registry.inc("service.cancelled_tickets", dropped)
        digest = keys_digest([it.key for it in live]) if _OBS.enabled else None
        with _obs_span(
            "service.batch", items=len(batch), keys_digest=digest
        ) as sp:
            for measure_rounds in (True, False):
                group = [
                    it for it in live if it.measure_rounds is measure_rounds
                ]
                if not group:
                    continue
                try:
                    # configs were normalized and keyed at submit time;
                    # precomputed_keys spares re-canonicalizing every miss
                    records = batch_records(
                        [it.config for it in group],
                        self.cache,
                        measure_rounds=measure_rounds,
                        keyer=self.keyer,
                        precomputed_keys=[it.key for it in group],
                        max_workers=self.max_workers,
                        chunksize=self.chunksize,
                        stats=self.stats.engine,
                        algorithm=self.algorithm,
                    )
                except Exception as exc:  # classification bug: fail the group
                    sp.add("failed", len(group))
                    for it in group:
                        if not it.future.done():
                            it.future.set_exception(exc)
                    continue
                for it, record in zip(group, records):
                    # a future can be cancelled between the drain filter
                    # and here; set_running_or_notify_cancel claims it
                    # exactly once (False = the submitter walked away)
                    if it.future.set_running_or_notify_cancel():
                        it.future.set_result(record)
                    else:
                        self.stats.cancelled += 1
                        _registry.inc("service.cancelled_tickets")

    async def run(self) -> None:
        """Dispatcher loop: drain, classify, repeat until drained shutdown.

        A consumed sentinel only *requests* the stop; the loop exits
        when the request coincides with an empty queue and no in-flight
        enqueue — so a producer suspended on a full queue (whose later
        puts the sentinel can overtake) always gets drained and every
        issued ticket resolves.
        """
        queue = self._ensure_queue()
        _registry.heartbeat(DISPATCHER_HEARTBEAT)
        while True:
            first = await queue.get()
            # One heartbeat per loop wake-up (per batch, not per item):
            # cheap enough to run unconditionally, and it gives timeout
            # diagnoses and /metrics a liveness signal even untraced.
            _registry.heartbeat(DISPATCHER_HEARTBEAT)
            if first is not None:
                batch = await self._drain_batch(first)
                # batch_records classifies synchronously; for census-
                # scale configurations a batch is milliseconds, and one
                # batch at a time is exactly the backpressure contract.
                self._classify(batch)
            else:
                self._stop_requested = True
            if self._stop_requested and self._inflight == 0 and queue.empty():
                break


class BatchClassifier:
    """Synchronous facade over the asyncio batch core.

    Owns a daemon thread running an event loop, a shared
    :class:`~repro.engine.cache.ResultCache` (pass one to persist or
    share with a census), and the dispatcher. Thread-safe: any number of
    threads may ``submit`` concurrently (the HTTP server does exactly
    that), and their requests coalesce into common batches.

    Parameters
    ----------
    cache:
        shared result cache; a private in-memory one is created when
        omitted. Use a JSONL-backed cache to persist across restarts —
        the records are the same shape the census pipeline writes, so a
        census run pre-warms the service and vice versa.
    max_batch:
        most requests classified in one engine call.
    max_pending:
        bound of the cold-miss queue; submits beyond it block
        (backpressure) until the dispatcher catches up.
    batch_window:
        seconds the dispatcher waits for stragglers after the queue runs
        dry — the latency price paid for larger, better-coalesced
        batches. 0 dispatches immediately.
    max_workers / chunksize:
        forwarded to :func:`repro.engine.batch_records` for cache-miss
        classification (``max_workers=1`` stays serial in-process).
        Caveat: each cold batch with more than ``chunksize`` unique
        misses spins up a fresh process pool, whose startup cost runs
        on the dispatcher and delays every queued request — worth it
        only when single-configuration classification is expensive
        (large n) and cold batches are big; duplicate-heavy or warm
        traffic should stay serial.
    keyer:
        request coalescing granularity; the default collapses
        tag-preserving isomorphs at any size via the refinement
        canonizer (:mod:`repro.canon`), whose memo makes repeat keying
        of warm traffic O(n + m).
    algorithm:
        classifier implementation for cold misses (see
        :func:`repro.core.classifier.classify`); responses are
        bit-for-bit identical for every choice, so the knob is a pure
        throughput decision. ``auto`` (the default) resolves per
        cold miss-batch to the vectorized batch kernel when numpy is
        importable and the run is in-process, and to the compiled core
        otherwise (see :func:`repro.engine.batch_records`).
    on_batch:
        optional observer called with each executed batch's size (on
        the dispatcher thread) — the server wires its batch-size
        histogram here (:mod:`repro.service.metrics`).
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        *,
        max_batch: int = 64,
        max_pending: int = 1024,
        batch_window: float = 0.002,
        max_workers: Optional[int] = 1,
        chunksize: int = 16,
        keyer: Keyer = default_keyer,
        algorithm: str = "auto",
        on_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        # Validate at build time, but keep the raw knob: batch_records
        # resolves "auto" per miss-batch (vectorized kernel when numpy is
        # available, compiled core otherwise), so collapsing it here would
        # pin the service to the single-configuration default.
        resolve_algorithm(algorithm)
        self.cache = cache if cache is not None else ResultCache()
        self.stats = ServiceStats()
        self._closed = False
        # Serializes submits against close(): a submit that passed the
        # closed check must finish scheduling before the sentinel can be
        # queued, or its coroutine could land on a stopped loop and its
        # ticket would never resolve.
        self._submit_lock = threading.Lock()
        self._loop = asyncio.new_event_loop()
        self._core = _AsyncBatchCore(
            self.cache,
            self.stats,
            keyer=keyer,
            max_batch=max_batch,
            max_pending=max_pending,
            batch_window=batch_window,
            max_workers=max_workers,
            chunksize=chunksize,
            algorithm=algorithm,
            on_batch=on_batch,
        )
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-dispatch", daemon=True
        )
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._core.run())
        except RuntimeError:
            # the loop was stopped out from under the dispatcher; the
            # thread dies quietly and submit() diagnoses it
            # (ServiceUnresponsiveError) instead of a daemon-thread
            # traceback racing the diagnosis — but first reap the
            # still-pending dispatcher task so nothing warns at GC time
            try:
                tasks = asyncio.all_tasks(self._loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    self._loop.run_until_complete(
                        asyncio.gather(*tasks, return_exceptions=True)
                    )
            except RuntimeError:  # pragma: no cover - stopped again
                pass

    # ------------------------------------------------------------------
    # submit / gather
    # ------------------------------------------------------------------
    def _schedule(self, mode: str, coro) -> "Future":
        """Validate the mode, guard against close, schedule ``coro``.

        The lock covers only closed-check + scheduling, NOT the result
        wait: call_soon_threadsafe is FIFO (and queue waiters are
        FIFO), so an enqueue scheduled before close()'s sentinel lands
        ahead of it, while a backpressure-blocked submit never stalls
        other submitters or close(). The returned handle's ``result()``
        blocks while the pending queue is full — that is the
        backpressure surface of :meth:`submit`/:meth:`submit_many`.
        """
        if mode not in MODES:
            coro.close()
            raise ValueError(f'unknown mode {mode!r} (choose "decide" or "elect")')
        with self._submit_lock:
            if self._closed:
                coro.close()
                raise ServiceClosedError("BatchClassifier is closed")
            if not self._thread.is_alive():
                coro.close()
                raise ServiceUnresponsiveError(
                    "dispatcher thread is dead (event loop crashed or was "
                    "stopped externally); the classifier cannot accept work"
                )
            return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def _diagnosis(self) -> str:
        """One-line dispatcher state for timeout errors.

        Includes the age of the dispatcher loop's last heartbeat, which
        separates "busy draining a long batch" (age keeps resetting)
        from "wedged or dead" (age grows without bound).
        """
        queue = self._core.queue
        age = _registry.heartbeat_age(DISPATCHER_HEARTBEAT)
        heartbeat = "never" if age is None else f"{age:.3f}s ago"
        return (
            f"dispatcher thread alive={self._thread.is_alive()}, "
            f"closed={self._closed}, "
            f"pending={queue.qsize() if queue is not None else 0}"
            f"/{self._core.max_pending}, "
            f"last heartbeat {heartbeat}"
        )

    def _await_handle(self, handle: "Future", timeout: Optional[float]):
        """Wait for a scheduled coroutine's handle, converting an opaque
        timeout into a diagnostic :class:`ServiceUnresponsiveError`."""
        try:
            return handle.result(timeout)
        except FuturesTimeoutError:
            handle.cancel()
            raise ServiceUnresponsiveError(
                f"dispatcher did not accept the request within {timeout}s "
                f"({self._diagnosis()}); either the queue is saturated "
                "(backpressure) or the event loop is wedged"
            ) from None

    def submit(
        self,
        config: Configuration,
        *,
        mode: str = "decide",
        timeout: Optional[float] = None,
    ) -> Ticket:
        """Submit one configuration; returns a :class:`Ticket`.

        Returns as soon as the request is keyed and either resolved
        (warm hit) or enqueued — blocking only when the pending queue is
        full. ``mode`` is ``"decide"`` or ``"elect"``. ``timeout``
        bounds that blocking: when the dispatcher has not accepted the
        request in time (saturated queue, wedged loop), a
        :class:`ServiceUnresponsiveError` is raised instead of waiting
        forever; a dispatcher whose loop has *died* is diagnosed
        immediately, whatever the timeout.
        """
        return self._await_handle(
            self._schedule(mode, self._core.enqueue(config, mode)), timeout
        )

    def submit_many(
        self,
        configs: Iterable[Configuration],
        *,
        mode: str = "decide",
        timeout: Optional[float] = None,
    ) -> List[Ticket]:
        """Submit a whole batch with one loop round-trip.

        Semantically identical to calling :meth:`submit` per item, but
        the keying/lookup loop runs on the dispatcher's event loop in
        one hop — this is the high-throughput path for warm
        duplicate-heavy workloads, where per-request thread handoff
        would otherwise dominate (the E20 benchmark measures exactly
        this). Blocks while the pending queue is full, like
        :meth:`submit`, and honors the same ``timeout`` diagnostics.
        """
        configs = list(configs)
        return self._await_handle(
            self._schedule(mode, self._core.enqueue_many(configs, mode)),
            timeout,
        )

    def schedule_admit(
        self,
        configs: Iterable[Configuration],
        *,
        mode: str = "decide",
        retry_after: float = 1.0,
    ) -> "Future":
        """Schedule an admission-controlled batch; returns the handle.

        The returned :class:`concurrent.futures.Future` resolves to a
        ``List[Ticket]`` — or raises
        :class:`ServiceSaturatedError` when the batch's cold misses
        exceed the queue's free capacity (nothing is enqueued in that
        case). Unlike :meth:`submit_many` this never blocks on a full
        queue, which is what an event-loop caller needs: the async HTTP
        server awaits the handle (``asyncio.wrap_future``) and turns
        saturation into ``429 Too Many Requests``.
        """
        configs = list(configs)
        return self._schedule(
            mode, self._core.admit_many(configs, mode, retry_after=retry_after)
        )

    def gather(self, tickets: Iterable[Ticket], timeout: Optional[float] = None
               ) -> List[Dict]:
        """Engine records for ``tickets``, in ticket order (blocking).

        ``timeout`` applies per ticket; an expiry raises
        :class:`ServiceUnresponsiveError` carrying the offending
        ticket's key and the dispatcher's state, so a wedged or dead
        loop is diagnosed instead of blocking callers forever.
        """
        records = []
        for t in tickets:
            try:
                records.append(t.result(timeout))
            except FuturesTimeoutError:
                raise ServiceUnresponsiveError(
                    f"ticket for key {t.key!r} ({t.mode}) unresolved after "
                    f"{timeout}s ({self._diagnosis()})"
                ) from None
        return records

    def classify_many(
        self,
        configs: Iterable[Configuration],
        *,
        mode: str = "decide",
        timeout: Optional[float] = None,
    ) -> List[Dict]:
        """Submit a whole batch and gather its records, in input order."""
        return self.gather(self.submit_many(configs, mode=mode), timeout)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work, drain the dispatcher, join the thread.

        Idempotent. Already-submitted tickets still resolve — the
        shutdown sentinel queues *behind* pending items (the submit
        lock guarantees no submit is mid-schedule when it is sent, so
        no ticket can land behind the sentinel and hang). With the
        default ``timeout=None`` the call blocks until the drain is
        complete; with a finite timeout it may return while the
        dispatcher is still draining — the dispatcher is never aborted
        mid-drain, so pending tickets still resolve, but the (daemon)
        loop thread is then left to finish on its own and its loop is
        not closed.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
        if not self._thread.is_alive():
            # the dispatcher already died (externally stopped/crashed
            # loop): there is nothing left to drain — just free the loop
            if not self._loop.is_closed():
                self._loop.close()
            return

        async def _sentinel() -> None:
            await self._core._ensure_queue().put(None)

        try:
            asyncio.run_coroutine_threadsafe(
                _sentinel(), self._loop
            ).result(timeout)
        except FuturesTimeoutError:
            pass  # the put stays scheduled; the dispatcher will see it
        self._thread.join(timeout)
        if not self._thread.is_alive():
            self._loop.close()

    @property
    def on_batch(self) -> Optional[Callable[[int], None]]:
        """The per-batch size observer (settable after construction, so
        the HTTP server can attach its histogram to a classifier built
        by the CLI)."""
        return self._core.on_batch

    @on_batch.setter
    def on_batch(self, observer: Optional[Callable[[int], None]]) -> None:
        self._core.on_batch = observer

    def __enter__(self) -> "BatchClassifier":
        """Context-manager entry: the classifier itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    def describe(self) -> str:
        """One-line stats summary (service + cache)."""
        return f"{self.stats.describe()}; {self.cache.describe()}"

    def meta(self) -> Dict:
        """The hit/miss/collapse accounting shipped in response ``meta``.

        Three nested counter groups: ``service`` (requests, fast hits,
        batches), ``engine`` (classifications, cache hits, isomorphism
        coalescing), and ``cache`` (the shared
        :class:`~repro.engine.cache.CacheStats` counters plus the
        current entry count). Values are cumulative for this classifier
        instance — a snapshot taken when the response is assembled, so
        clients can watch their own traffic turn into cache hits.
        """
        cache = dict(self.cache.stats.as_dict(), entries=len(self.cache))
        return {
            "service": self.stats.as_dict(),
            "engine": self.stats.engine.as_dict(),
            "cache": cache,
        }
