"""Batch classification service: serve ``decide``/``elect`` at scale.

The service layer turns the library's one-shot entry points into a
request-serving system. Many :class:`~repro.core.configuration.
Configuration` requests — submitted from threads, HTTP connections, or a
tight loop — are coalesced up to tag-preserving isomorphism
(:mod:`repro.engine.keys`), answered from the census engine's
canonical-form cache when warm, and classified in bounded batches
through the engine's batch-lookup hook when cold. Responses are
bit-for-bit equal to serial :func:`repro.core.feasibility.decide` /
``elect`` reports, independent of batching, caching, and concurrency.

Three modules:

* :mod:`repro.service.schema` — the JSON wire format (requests,
  responses, the serial-reference oracle);
* :mod:`repro.service.batcher` — the asyncio batch core (bounded queue,
  backpressure, coalescing) behind the sync
  :class:`~repro.service.batcher.BatchClassifier` facade;
* :mod:`repro.service.server` — the pure-asyncio HTTP endpoint behind
  ``repro-radio serve`` (connection limits, per-request deadlines,
  429 admission control, graceful drain);
* :mod:`repro.service.metrics` — Prometheus text exposition for
  ``GET /metrics`` (counters + latency/batch-size histograms).

Quickstart::

    >>> from repro import Configuration
    >>> from repro.service import BatchClassifier
    >>> with BatchClassifier() as svc:
    ...     t = svc.submit(Configuration([(0, 1), (1, 2)], {0: 0, 1: 1, 2: 0}))
    ...     t.report()
    {'feasible': True, 'decision': 'Yes', 'iterations': 1}

See ``docs/service.md`` for the wire format and batching semantics, and
``docs/api.md`` for the curated API reference.
"""

from .batcher import (
    BatchClassifier,
    ServiceClosedError,
    ServiceSaturatedError,
    ServiceStats,
    ServiceUnresponsiveError,
    Ticket,
)
from .metrics import (
    METRICS_CONTENT_TYPE,
    ServiceMetrics,
    parse_prometheus_text,
)
from .schema import (
    MODES,
    RequestError,
    ServiceRequest,
    config_from_json,
    config_to_json,
    error_response,
    parse_request,
    record_to_report,
    requests_from_body,
    response_for,
    serial_report,
)
from .server import (
    MAX_BODY_BYTES,
    ClassificationServer,
    make_server,
    run_server,
    serve,
)

__all__ = [
    "BatchClassifier",
    "ClassificationServer",
    "MAX_BODY_BYTES",
    "METRICS_CONTENT_TYPE",
    "MODES",
    "RequestError",
    "ServiceClosedError",
    "ServiceMetrics",
    "ServiceRequest",
    "ServiceSaturatedError",
    "ServiceStats",
    "ServiceUnresponsiveError",
    "Ticket",
    "config_from_json",
    "config_to_json",
    "error_response",
    "make_server",
    "parse_prometheus_text",
    "parse_request",
    "record_to_report",
    "requests_from_body",
    "response_for",
    "run_server",
    "serial_report",
    "serve",
]
