"""Wire format of the batch classification service.

One *request* names a configuration and a mode; one *response* carries
the isomorphism-invariant report for it. The formats are plain JSON so
any HTTP client (curl, urllib, a browser) can talk to ``repro-radio
serve``, and the same dictionaries are what the importable
:class:`~repro.service.batcher.BatchClassifier` consumes and produces.

Request object::

    {"edges": [[0, 1], [1, 2]],        # undirected edges (node-id pairs)
     "tags":  {"0": 0, "1": 1, "2": 0},# node -> wakeup tag (or a list)
     "mode":  "decide"}                # "decide" (default) or "elect"

``tags`` may be a mapping (JSON object keys are strings; numeric keys
are coerced back to ints so they match the integer edge endpoints) or a
list ``[t_0, .., t_{n-1}]`` tagging nodes ``0..n-1``. The shorthand
``{"line": [0, 1, 0]}`` builds a tagged path via
:func:`repro.core.configuration.line_configuration`.

Response object::

    {"ok": true, "mode": "decide", "key": "<canonical key>",
     "n": 3, "span": 1,
     "report": {"feasible": true, "decision": "Yes", "iterations": 1}}

``mode: "elect"`` adds ``"elected"`` and ``"rounds"`` (the dedicated
election's local termination round ``done_v``; ``null`` when
infeasible). Reports carry only **isomorphism-invariant** facts — the
same convention as the census engine's cache (see
``docs/architecture.md``): the leader's *identity* moves under the
tag-preserving isomorphisms that request coalescing collapses, so it is
deliberately not part of the wire format. Callers who need the concrete
leader node run :func:`repro.core.feasibility.elect` locally.

Failures are ``{"ok": false, "error": "<message>"}``. The HTTP server
additionally attaches a ``meta`` object — the classifier's cumulative
cache hit/miss and isomorphism-coalescing counters
(:meth:`~repro.service.batcher.BatchClassifier.meta`) — to every
successful response (top level for batches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.configuration import (
    Configuration,
    ConfigurationError,
    line_configuration,
)

#: The two service modes: feasibility decision, or decision + dedicated
#: election round count.
MODES = ("decide", "elect")


class RequestError(ValueError):
    """A request object is malformed (bad JSON shape or configuration)."""


@dataclass(frozen=True)
class ServiceRequest:
    """One parsed classification request: a configuration plus a mode."""

    config: Configuration
    mode: str = "decide"

    @property
    def elect(self) -> bool:
        """True when the request asks for election rounds."""
        return self.mode == "elect"


def _coerce_node(key: str) -> object:
    """Map a JSON object key back to a node id (ints stay ints)."""
    try:
        return int(key)
    except (TypeError, ValueError):
        return key


def config_from_json(obj: Dict) -> Configuration:
    """Build a :class:`Configuration` from a request-shaped dict.

    Accepts ``{"edges": ..., "tags": ...}`` or the ``{"line": [...]}``
    shorthand; raises :class:`RequestError` on anything malformed
    (including disconnected graphs, self-loops, or negative tags — the
    :class:`Configuration` validators run here).
    """
    if not isinstance(obj, dict):
        raise RequestError(f"request must be a JSON object, got {type(obj).__name__}")
    if "line" in obj:
        tags = obj["line"]
        if not isinstance(tags, list) or not all(isinstance(t, int) for t in tags):
            raise RequestError('"line" must be a list of integer tags')
        try:
            return line_configuration(tags)
        except ConfigurationError as exc:
            raise RequestError(str(exc)) from exc
    if "edges" not in obj or "tags" not in obj:
        raise RequestError('request needs "edges" and "tags" (or "line")')
    edges = obj["edges"]
    tags = obj["tags"]
    if not isinstance(edges, list):
        raise RequestError('"edges" must be a list of node pairs')
    if isinstance(tags, list):
        tag_map = {i: t for i, t in enumerate(tags)}
    elif isinstance(tags, dict):
        tag_map = {_coerce_node(k): t for k, t in tags.items()}
    else:
        raise RequestError('"tags" must be a list or an object')
    try:
        return Configuration([tuple(e) for e in edges], tag_map)
    except (ConfigurationError, TypeError) as exc:
        raise RequestError(str(exc)) from exc


def config_to_json(cfg: Configuration) -> Dict:
    """Request-shaped dict for ``cfg`` (round-trips via
    :func:`config_from_json`)."""
    return {
        "edges": [list(e) for e in cfg.edges],
        "tags": {str(v): t for v, t in sorted(cfg.tags.items())},
    }


def parse_request(obj: Dict) -> ServiceRequest:
    """Parse one request object; raises :class:`RequestError` when bad."""
    config = config_from_json(obj)  # raises for non-dict obj
    mode = obj.get("mode", "decide")
    if mode not in MODES:
        raise RequestError(f'unknown mode {mode!r} (choose "decide" or "elect")')
    return ServiceRequest(config=config, mode=mode)


def record_to_report(record: Dict, mode: str) -> Dict:
    """Shape an engine record into the mode's wire report.

    The record is :func:`repro.engine.census_record`'s dict. ``decide``
    reports carry feasibility, the paper's Yes/No decision string, and
    the classifier iteration count; ``elect`` adds the election outcome
    and round count. A record that was cached with rounds still yields a
    rounds-free ``decide`` report, so responses never depend on what
    else warmed the cache.
    """
    feasible = bool(record["feasible"])
    report = {
        "feasible": feasible,
        "decision": "Yes" if feasible else "No",
        "iterations": record["iterations"],
    }
    if mode == "elect":
        report["elected"] = feasible
        report["rounds"] = record["rounds"] if feasible else None
    return report


def response_for(request: ServiceRequest, key: str, record: Dict) -> Dict:
    """Assemble the success response for a classified request.

    ``n`` and ``span`` are invariant under normalization (it only
    shifts tags), so the raw request configuration is read directly.
    """
    cfg = request.config
    return {
        "ok": True,
        "mode": request.mode,
        "key": key,
        "n": cfg.n,
        "span": cfg.span,
        "report": record_to_report(record, request.mode),
    }


def error_response(message: str) -> Dict:
    """Assemble the failure response for a rejected request."""
    return {"ok": False, "error": message}


def serial_report(config: Configuration, mode: str = "decide") -> Dict:
    """The reference report: what serial ``decide``/``elect`` produce.

    This is the service's correctness oracle — batched, coalesced, and
    cached responses must be bit-for-bit equal to it (the E20 benchmark
    gate and the service tests assert exactly that).
    """
    from ..core.feasibility import decide, elect

    rep = decide(config)
    report = {
        "feasible": rep.feasible,
        "decision": rep.decision,
        "iterations": rep.iterations,
    }
    if mode == "elect":
        report["elected"] = rep.feasible
        report["rounds"] = (
            elect(config, trace=rep.trace).rounds if rep.feasible else None
        )
    return report


def requests_from_body(obj: object) -> List[Dict]:
    """Split a POST body into individual request objects.

    A body is either one request object or ``{"requests": [...]}``;
    raises :class:`RequestError` for anything else. Individual items are
    *not* validated here — the server parses them one by one so a bad
    item yields a per-item error instead of failing the whole batch.
    """
    if isinstance(obj, dict) and "requests" in obj:
        batch = obj["requests"]
        if not isinstance(batch, list):
            raise RequestError('"requests" must be a list')
        return batch
    if isinstance(obj, dict):
        return [obj]
    raise RequestError("body must be a request object or {\"requests\": [...]}")
