"""Observability for the serving layer: Prometheus text exposition.

The async HTTP server (:mod:`repro.service.server`) exports its
accounting at ``GET /metrics`` in the Prometheus text format
(``text/plain; version=0.0.4``), so any scraper — Prometheus itself,
``curl`` + ``grep``, or the E25 load benchmark — can watch the service
without parsing log lines. Three groups of series are exported:

* **Classifier counters** — the existing
  :class:`~repro.service.batcher.ServiceStats` /
  :class:`~repro.engine.pipeline.EngineStats` /
  :class:`~repro.engine.cache.CacheStats` counters, exposed verbatim
  (value for value with their ``as_dict()`` payloads) under
  ``repro_service_*``, ``repro_engine_*`` and ``repro_cache_*``.
* **HTTP counters** — requests served, split by status code, plus
  admission rejections and connection-limit rejections.
* **Histograms** — request latency (``repro_http_request_latency_
  seconds``) observed once per HTTP request, and classification batch
  size (``repro_service_batch_size``) observed once per dispatcher
  batch via the :class:`~repro.service.batcher.BatchClassifier`
  ``on_batch`` hook. Bucket counts are cumulative (standard Prometheus
  ``le`` semantics) and always sum to ``_count``.

Everything here is stdlib-only and loop-agnostic: observations are
single ``int``/``float`` updates (atomic enough under the GIL for the
two threads involved — the server loop and the dispatcher loop), and
rendering takes a consistent-enough snapshot for monitoring purposes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Content-Type of the ``/metrics`` exposition.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default request-latency buckets (seconds) — tuned for an in-process
#: classifier: sub-millisecond warm hits up to multi-second cold elects.
LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default batch-size buckets — powers of two up to the usual
#: ``max_batch`` ceiling.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _format_value(value: object) -> str:
    """Render one sample value the Prometheus way (ints stay ints)."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class Histogram:
    """A fixed-bucket Prometheus histogram (cumulative ``le`` buckets).

    ``observe`` is O(#buckets); ``render`` emits the standard
    ``_bucket``/``_sum``/``_count`` series including the ``+Inf``
    bucket. Not a general metrics client — exactly what the service
    needs and nothing more.
    """

    def __init__(
        self, name: str, help_text: str, buckets: Sequence[float]
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.help_text = help_text
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (per-bucket counts stay non-cumulative
        internally; rendering accumulates them)."""
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def render(self) -> List[str]:
        """The exposition lines for this histogram."""
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} histogram",
        ]
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{self.name}_sum {_format_value(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


def render_gauge_group(
    prefix: str, counters: Dict[str, object], help_text: str
) -> List[str]:
    """Expose a flat ``as_dict()``-style counter dict as gauges.

    Each key becomes ``<prefix>_<key>`` carrying exactly the dict's
    value — the bit-for-bit bridge between ``/metrics`` and the
    ``ServiceStats``/``EngineStats``/``CacheStats`` accounting (pinned
    by ``tests/test_service_metrics.py``).
    """
    lines: List[str] = []
    for key, value in counters.items():
        name = f"{prefix}_{key}"
        lines.append(f"# HELP {name} {help_text} ({key})")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")
    return lines


class ServiceMetrics:
    """The server's metric registry: HTTP counters plus two histograms.

    One instance lives on each
    :class:`~repro.service.server.ClassificationServer`; the server
    calls :meth:`observe_request` once per HTTP request (any route) and
    wires :meth:`observe_batch` into the classifier's ``on_batch``
    hook, so batch sizes are recorded no matter which client path
    (HTTP or library) filled the batch.
    """

    def __init__(
        self,
        latency_buckets: Sequence[float] = LATENCY_BUCKETS,
        batch_buckets: Sequence[float] = BATCH_SIZE_BUCKETS,
    ) -> None:
        self.request_latency = Histogram(
            "repro_http_request_latency_seconds",
            "Wall time from request head parsed to response written.",
            latency_buckets,
        )
        self.batch_size = Histogram(
            "repro_service_batch_size",
            "Items per dispatcher classification batch.",
            batch_buckets,
        )
        self.requests_total = 0
        self.responses_by_status: Dict[int, int] = {}
        self.rejected_saturated = 0  #: 429s issued by admission control
        self.rejected_connections = 0  #: connections refused at the cap
        self.deadline_hits = 0  #: requests that hit the per-request deadline

    def observe_request(self, status: int, seconds: float) -> None:
        """Record one completed HTTP request (called before the response
        bytes go out, so a ``/metrics`` scrape counts itself)."""
        self.requests_total += 1
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )
        self.request_latency.observe(seconds)
        if status == 429:
            self.rejected_saturated += 1

    def observe_batch(self, size: int) -> None:
        """Record one dispatcher batch (the classifier's ``on_batch``
        hook points here)."""
        self.batch_size.observe(float(size))

    def render(self, classifier_meta: Optional[Dict] = None) -> str:
        """The full ``/metrics`` payload.

        ``classifier_meta`` is
        :meth:`~repro.service.batcher.BatchClassifier.meta` — the
        nested ``service``/``engine``/``cache`` counter groups; when
        given, each group is exposed verbatim as gauges.
        """
        lines: List[str] = []
        if classifier_meta:
            groups = (
                ("repro_service", "service", "Batch classifier counter"),
                ("repro_engine", "engine", "Census engine counter"),
                ("repro_cache", "cache", "Result cache counter"),
            )
            for prefix, group, help_text in groups:
                counters = classifier_meta.get(group, {})
                lines.extend(render_gauge_group(prefix, counters, help_text))
        lines.append(
            "# HELP repro_http_requests_total HTTP requests handled "
            "(all routes)."
        )
        lines.append("# TYPE repro_http_requests_total counter")
        lines.append(f"repro_http_requests_total {self.requests_total}")
        lines.append(
            "# HELP repro_http_responses_total HTTP responses by status code."
        )
        lines.append("# TYPE repro_http_responses_total counter")
        for status in sorted(self.responses_by_status):
            lines.append(
                f'repro_http_responses_total{{code="{status}"}} '
                f"{self.responses_by_status[status]}"
            )
        for name, value in (
            ("repro_http_rejected_saturated_total", self.rejected_saturated),
            ("repro_http_rejected_connections_total", self.rejected_connections),
            ("repro_http_deadline_hits_total", self.deadline_hits),
        ):
            lines.append(f"# HELP {name} Admission/limit rejection counter.")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {value}")
        lines.extend(self.request_latency.render())
        lines.extend(self.batch_size.render())
        return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse a Prometheus text exposition into ``{series: value}``.

    The key is the sample name including its label set verbatim
    (e.g. ``repro_http_responses_total{code="200"}``). Comment and
    blank lines are skipped; malformed sample lines raise
    ``ValueError``. This is the reading half of :meth:`ServiceMetrics.
    render` — handy for tests and for the E25 benchmark, not a full
    client library.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"malformed metrics line: {line!r}")
        out[name] = float(value)
    return out
