"""``repro-radio serve``: a pure-asyncio HTTP front end for real traffic.

The server is built directly on :func:`asyncio.start_server` (stdlib
only, no third-party dependencies) and talks natively to the asyncio
batch core behind :class:`~repro.service.batcher.BatchClassifier`: HTTP
handlers never block an event loop — requests are admitted with
``schedule_admit`` and awaited as futures, so one saturated client can
never wedge the accept loop. Unlike the PR-2 thread-per-connection
front end, saturation and slowness now have *defined* behavior:

* **Connection limit** — at most ``max_connections`` concurrent
  connections; extras receive an immediate ``503`` and are closed.
* **Request deadline** — every request (including reading its body)
  must finish within ``request_timeout`` seconds. A slow-loris body
  gets ``408``; a deadline hit during classification gets ``503`` and
  the request's pending batcher tickets are *cancelled*, freeing their
  queue slots instead of leaking them.
* **Admission control** — when a batch's cold misses exceed the
  bounded queue's free capacity, the server answers ``429 Too Many
  Requests`` with a parseable ``Retry-After`` header (the library
  ``submit`` path keeps its blocking-backpressure contract; HTTP
  callers get the fail-fast contract).
* **Graceful drain** — shutdown stops accepting, cuts idle keep-alive
  connections, and gives in-flight requests ``drain_timeout`` seconds
  to complete before cancelling stragglers; no response is dropped.
* **Observability** — ``GET /metrics`` exports the classifier's
  counters plus latency/batch-size histograms in Prometheus text
  format (:mod:`repro.service.metrics`), and every request emits one
  structured JSON log line to stderr (suppressed by ``quiet``).

Routes:

* ``POST /classify`` — body is one request object or
  ``{"requests": [...]}`` (see :mod:`repro.service.schema`); responds
  with one response object or ``{"ok": true, "responses": [...]}``.
  Item-level failures (malformed configuration) become per-item
  ``{"ok": false, ...}`` entries — one bad request never fails a batch.
  Successful responses carry a ``meta`` object with the classifier's
  cumulative hit/miss/collapse counters
  (:meth:`~repro.service.batcher.BatchClassifier.meta`).
* ``GET /healthz`` — liveness: ``{"ok": true, "service": ...}``.
* ``GET /stats`` — the service/cache accounting counters as JSON.
* ``GET /metrics`` — Prometheus text exposition.

Walkthroughs (curl and a Python client) live in ``docs/service.md``;
the E25 load benchmark (``benchmarks/bench_e25_service_load.py``) gates
sustained RPS, tail latency, and 429-on-saturation.
"""

from __future__ import annotations

import asyncio
import json
import math
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..obs.runtime import STATE as _OBS
from ..obs.runtime import current_span_id as _obs_current_span_id
from ..obs.runtime import event as _obs_event
from ..obs.runtime import registry as _registry
from ..obs.runtime import span as _obs_span
from .batcher import (
    BatchClassifier,
    ServiceClosedError,
    ServiceSaturatedError,
    Ticket,
    keys_digest,
)
from .metrics import METRICS_CONTENT_TYPE, ServiceMetrics
from .schema import (
    MODES,
    RequestError,
    error_response,
    parse_request,
    requests_from_body,
    response_for,
)

#: Largest accepted POST body, in bytes (8 MiB): bounds per-connection
#: memory the same way ``max_pending`` bounds the classification queue.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Server identity served by ``/healthz`` and the ``Server`` header.
SERVER_VERSION = "repro-radio-serve/2.0"

#: Default concurrent-connection cap (``--max-connections``).
DEFAULT_MAX_CONNECTIONS = 128

#: Default per-request deadline, seconds (``--request-timeout``).
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Default graceful-drain budget, seconds (``--drain-timeout``).
DEFAULT_DRAIN_TIMEOUT = 5.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _ConnState:
    """Mutable per-connection bookkeeping for the drain protocol."""

    __slots__ = ("busy", "peer")

    def __init__(self, peer: str) -> None:
        self.busy = False  #: a request is mid-flight on this connection
        self.peer = peer  #: "host:port" of the client, for log lines


class _RequestAborted(Exception):
    """Internal: the request cannot proceed; a response was (or will
    be) written and the connection must close."""

    def __init__(self, status: int, payload: Dict, respond: bool = True):
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload
        self.respond = respond


class ClassificationServer:
    """Asyncio HTTP server owning the shared classifier.

    The constructor binds the listening socket immediately (``port=0``
    picks a free port; ``server_address`` is the bound address), but
    serving happens in :meth:`serve_forever` — call it on any thread.
    :meth:`shutdown` (thread-safe) triggers the graceful drain;
    :meth:`server_close` releases the loop. The surface deliberately
    mirrors ``socketserver`` so PR-2 callers keep working unchanged.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        classifier: BatchClassifier,
        *,
        quiet: bool = False,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be > 0")
        if drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")
        self.classifier = classifier
        self.quiet = quiet
        self.max_connections = max_connections
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        # batch sizes are recorded by the dispatcher thread; attach the
        # histogram unless the caller wired an observer already
        if classifier.on_batch is None:
            classifier.on_batch = self.metrics.observe_batch
        self._connections: Dict["asyncio.Task", _ConnState] = {}
        self._draining = False
        self._drained = False
        self._shutdown_requested = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_async: Optional[asyncio.Event] = None
        self._loop = asyncio.new_event_loop()

        async def _bind() -> "asyncio.AbstractServer":
            return await asyncio.start_server(
                self._handle_connection, address[0], address[1]
            )

        try:
            self._server = self._loop.run_until_complete(_bind())
        except BaseException:
            self._loop.close()
            raise
        self.server_address = self._server.sockets[0].getsockname()[:2]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the accept/serve loop until :meth:`shutdown` completes the
        graceful drain. Blocking; run it on a thread to serve in the
        background (the tests and docs do exactly that)."""
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._serve_main())
        finally:
            self._stopped.set()

    def shutdown(self) -> None:
        """Request a graceful drain and wait for serving to stop.

        Thread-safe and idempotent. In-flight requests get
        ``drain_timeout`` seconds to finish; idle keep-alive
        connections are closed immediately; new connections are
        refused. If the serve loop is not running (interrupted, or
        never started) the drain executes inline on this thread.
        """
        self._shutdown_requested.set()
        if self._stopped.is_set():
            return
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._wake_shutdown)
            self._stopped.wait(self.drain_timeout + 10.0)
        else:
            try:
                self._loop.run_until_complete(self._drain())
            except RuntimeError:  # pragma: no cover - concurrent starter
                pass
            finally:
                self._stopped.set()

    def server_close(self) -> None:
        """Release the listening sockets and close the server's loop
        (call after :meth:`shutdown`; the classifier is closed by its
        owner, not here)."""
        if self._loop.is_closed() or self._loop.is_running():
            return
        self._server.close()
        try:
            self._loop.run_until_complete(self._server.wait_closed())
        except RuntimeError:  # pragma: no cover - defensive
            pass
        self._loop.close()

    @property
    def connection_count(self) -> int:
        """Currently-open client connections (the limit's measure)."""
        return len(self._connections)

    def _wake_shutdown(self) -> None:
        if self._shutdown_async is not None:
            self._shutdown_async.set()

    async def _serve_main(self) -> None:
        self._shutdown_async = asyncio.Event()
        if self._shutdown_requested.is_set():
            self._shutdown_async.set()
        await self._shutdown_async.wait()
        await self._drain()

    async def _drain(self) -> None:
        """Stop accepting, cut idle connections, wait out busy ones."""
        if self._drained:
            return
        self._drained = True
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        for task, state in list(self._connections.items()):
            if not state.busy:
                task.cancel()
        tasks = [t for t in list(self._connections) if not t.done()]
        abandoned = 0
        if tasks:
            _, pending = await asyncio.wait(tasks, timeout=self.drain_timeout)
            abandoned = len(pending)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        self._log(event="drain", abandoned=abandoned)

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def _log(self, **fields: object) -> None:
        """One structured JSON log line to stderr (unless quiet).

        When tracing is on, the enclosing request span's id is added as
        ``span`` — the hook that correlates log lines with the run-event
        log (and, via each batch span's ``keys_digest`` attr, with the
        dispatcher batch that served the request).
        """
        if self.quiet:
            return
        record = {"ts": round(time.time(), 3), "service": SERVER_VERSION}
        if _OBS.enabled:
            span_id = _obs_current_span_id()
            if span_id is not None:
                record["span"] = span_id
        record.update({k: v for k, v in fields.items() if v is not None})
        print(json.dumps(record, separators=(",", ":")), file=sys.stderr)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        task = asyncio.current_task()
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        state = _ConnState(peer)
        self._connections[task] = state
        try:
            if self._draining:
                return
            if len(self._connections) > self.max_connections:
                self.metrics.rejected_connections += 1
                await self._respond(
                    writer,
                    state,
                    503,
                    error_response(
                        f"connection limit ({self.max_connections}) reached"
                    ),
                    close=True,
                    started=None,
                    method=None,
                    path=None,
                )
                return
            await self._connection_loop(reader, writer, state)
        except asyncio.CancelledError:
            pass  # drain cancelled an idle or straggling connection
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away mid-read/write; nothing to salvage
        finally:
            self._connections.pop(task, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _connection_loop(self, reader, writer, state) -> None:
        """Serve requests on one (possibly keep-alive) connection."""
        while not self._draining:
            state.busy = False
            try:
                head = await asyncio.wait_for(
                    self._read_head(reader), self.request_timeout
                )
            except asyncio.TimeoutError:
                # slow-loris head, or an idle keep-alive connection: an
                # explicit 408-and-close either way
                state.busy = True
                self.metrics.deadline_hits += 1
                await self._respond(
                    writer,
                    state,
                    408,
                    error_response("request head not received in time"),
                    close=True,
                    started=None,
                    method=None,
                    path=None,
                )
                return
            except (ValueError, asyncio.IncompleteReadError):
                state.busy = True
                await self._respond(
                    writer,
                    state,
                    400,
                    error_response("malformed request head"),
                    close=True,
                    started=None,
                    method=None,
                    path=None,
                )
                return
            if head is None:
                return  # clean EOF between requests
            state.busy = True
            method, path, version, headers = head
            started = self._loop.time()
            phase = {"name": "read"}
            try:
                with _obs_span(
                    "service.request",
                    method=method,
                    path=path,
                    client=state.peer,
                ):
                    keep_alive = await asyncio.wait_for(
                        self._dispatch(
                            method, path, version, headers, reader, writer,
                            state, started, phase,
                        ),
                        self.request_timeout,
                    )
            except asyncio.TimeoutError:
                # Deadline. During body read: the client is too slow
                # (408). During classification: the service is (503) —
                # and the awaited tickets were cancelled by the
                # wait_for unwind, freeing their batcher slots.
                self.metrics.deadline_hits += 1
                slow_read = phase["name"] == "read"
                await self._respond(
                    writer,
                    state,
                    408 if slow_read else 503,
                    error_response(
                        "request body not received in time"
                        if slow_read
                        else f"deadline exceeded ({self.request_timeout:g}s)"
                    ),
                    close=True,
                    started=started,
                    method=method,
                    path=path,
                )
                return
            except _RequestAborted as abort:
                if abort.respond:
                    await self._respond(
                        writer,
                        state,
                        abort.status,
                        abort.payload,
                        close=True,
                        started=started,
                        method=method,
                        path=path,
                    )
                return
            if not keep_alive:
                return

    async def _read_head(self, reader):
        """Read and parse one request head; None on clean EOF."""
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").rstrip("\r\n").split()
        if len(parts) != 3:
            raise ValueError("bad request line")
        method, path, version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return method, path, version, headers

    # ------------------------------------------------------------------
    # response plumbing
    # ------------------------------------------------------------------
    async def _respond(
        self,
        writer,
        state,
        status: int,
        payload: Optional[Dict],
        *,
        close: bool,
        started: Optional[float],
        method: Optional[str],
        path: Optional[str],
        items: Optional[int] = None,
        content: Optional[bytes] = None,
        content_type: str = "application/json",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        """Write one response (JSON ``payload`` or raw ``content``),
        record metrics, and emit the structured request log line."""
        body = (
            content
            if content is not None
            else json.dumps(payload).encode("utf-8")
        )
        elapsed = (
            self._loop.time() - started if started is not None else 0.0
        )
        self.metrics.observe_request(status, elapsed)
        self._log(
            event="request",
            client=state.peer,
            method=method,
            path=path,
            status=status,
            ms=round(elapsed * 1000, 3),
            items=items,
        )
        reason = _REASONS.get(status, "")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Server: {SERVER_VERSION}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        head.extend(f"{k}: {v}" for k, v in extra_headers)
        if close:
            head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method, path, version, headers, reader, writer, state,
        started, phase,
    ) -> bool:
        """Route one parsed request; returns whether to keep the
        connection alive afterwards."""
        connection = headers.get("connection", "").lower()
        keep_alive = (
            version == "HTTP/1.1" and "close" not in connection
        ) or "keep-alive" in connection
        if self._draining:
            keep_alive = False

        async def respond(status, payload, *, items=None, content=None,
                          content_type="application/json", extra=()):
            await self._respond(
                writer, state, status, payload,
                close=not keep_alive, started=started, method=method,
                path=path, items=items, content=content,
                content_type=content_type, extra_headers=extra,
            )
            return keep_alive

        if method == "GET":
            if path == "/healthz":
                return await respond(
                    200, {"ok": True, "service": SERVER_VERSION}
                )
            if path == "/stats":
                return await respond(200, self._stats_payload())
            if path == "/metrics":
                # the classic exposition first (bit-for-bit what PR 6
                # served), then the process-wide obs registry appended —
                # the payload stays a strict superset of the old one
                text = self.metrics.render(self.classifier.meta())
                text += _registry.render_prometheus()
                return await respond(
                    200, None, content=text.encode("utf-8"),
                    content_type=METRICS_CONTENT_TYPE,
                )
            return await respond(404, error_response(f"no route {path!r}"))
        if method != "POST":
            return await respond(
                405, error_response(f"method {method} not allowed")
            )
        raw = await self._read_body(headers, reader)
        phase["name"] = "classify"
        if path != "/classify":
            return await respond(404, error_response(f"no route {path!r}"))
        status, payload, items, extra = await self._classify(raw)
        return await respond(status, payload, items=items, extra=extra)

    def _stats_payload(self) -> Dict:
        svc = self.classifier
        e = svc.stats.engine
        return {
            "ok": True,
            "requests": svc.stats.submitted,
            "fast_hits": svc.stats.fast_hits,
            "batches": svc.stats.batches,
            "largest_batch": svc.stats.largest_batch,
            "rejected": svc.stats.rejected,
            "classified": e.classified,
            "cache_hits": e.cache_hits,
            "coalesced": e.deduped,
            "cache_entries": len(svc.cache),
            "connections": self.connection_count,
            "summary": svc.describe(),
        }

    async def _read_body(self, headers, reader) -> bytes:
        """Read the request body, policing size before a byte is read."""
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            raise _RequestAborted(
                400, error_response("bad Content-Length")
            )
        if length > MAX_BODY_BYTES:
            raise _RequestAborted(
                413, error_response(f"body exceeds {MAX_BODY_BYTES} bytes")
            )
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise _RequestAborted(
                400, error_response("body shorter than Content-Length"),
                respond=False,  # the client is gone; nobody to answer
            )

    async def _classify(
        self, raw: bytes
    ) -> Tuple[int, Dict, Optional[int], Tuple]:
        """The ``POST /classify`` route: parse, admit, await, assemble.

        Returns ``(status, payload, item_count, extra_headers)``.
        Mirrors the PR-2 semantics exactly (per-item errors, batched vs
        single shapes, 400-vs-500 attribution) with two new outcomes:
        ``429`` on admission refusal and ticket cancellation when the
        caller's deadline unwinds this coroutine.
        """
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, error_response(f"invalid JSON: {exc}"), None, ()
        try:
            items = requests_from_body(body)
        except RequestError as exc:
            return 400, error_response(str(exc)), None, ()
        batched = isinstance(body, dict) and "requests" in body

        parsed: List[Optional[object]] = []  # ServiceRequest | None
        responses: List[Optional[Dict]] = []
        for obj in items:
            try:
                parsed.append(parse_request(obj))
                responses.append(None)  # filled from the ticket below
            except (RequestError, ValueError) as exc:
                parsed.append(None)
                responses.append(error_response(str(exc)))

        # Admit each mode's well-formed items in one non-blocking call;
        # saturation refuses the whole request with 429 (cancelling any
        # tickets the other mode group already got).
        tickets: Dict[int, Ticket] = {}
        try:
            for mode in MODES:
                index = [
                    i
                    for i, request in enumerate(parsed)
                    if request is not None and request.mode == mode
                ]
                if not index:
                    continue
                handle = self.classifier.schedule_admit(
                    [parsed[i].config for i in index], mode=mode
                )
                batch = await asyncio.wrap_future(handle)
                tickets.update(zip(index, batch))
                if _OBS.enabled:
                    # same digest function the dispatcher stamps into
                    # its service.batch span: the correlation token
                    _obs_event(
                        "request.admitted",
                        mode=mode,
                        items=len(batch),
                        keys_digest=keys_digest([t.key for t in batch]),
                    )
        except ServiceSaturatedError as exc:
            for ticket in tickets.values():
                ticket.cancel()
            retry_after = max(1, math.ceil(exc.retry_after))
            payload = dict(
                error_response(f"saturated: {exc}"), retry_after=retry_after
            )
            return 429, payload, len(items), (
                ("Retry-After", str(retry_after)),
            )
        except ServiceClosedError:
            return (
                503,
                error_response("service is shutting down"),
                len(items),
                (),
            )

        server_faults = set()  # indices whose failure is ours, not the client's
        try:
            awaited = await asyncio.gather(
                *(
                    asyncio.wrap_future(tickets[i].future)
                    for i in sorted(tickets)
                ),
                return_exceptions=True,
            )
        except asyncio.CancelledError:
            # deadline unwind: abandon every pending ticket so the
            # dispatcher drops (never classifies) the queued work
            for ticket in tickets.values():
                ticket.cancel()
            raise
        for i, outcome in zip(sorted(tickets), awaited):
            request = parsed[i]
            if isinstance(outcome, BaseException):
                responses[i] = error_response(
                    f"classification failed: {outcome}"
                )
                server_faults.add(i)
                continue
            responses[i] = response_for(request, tickets[i].key, dict(outcome))

        # hit/miss/collapse accounting rides on every successful
        # response (snapshot at assembly time; see BatchClassifier.meta)
        meta = self.classifier.meta()
        if batched:
            payload = {"ok": True, "responses": responses, "meta": meta}
            return 200, payload, len(items), ()
        if responses and responses[0].get("ok"):
            return 200, dict(responses[0], meta=meta), 1, ()
        if responses:
            # a classification fault is the server's failure (500); a
            # request the parser rejected is the client's (400)
            status = 500 if 0 in server_faults else 400
            return status, responses[0], 1, ()
        return 400, error_response("empty request"), 0, ()


def make_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    classifier: Optional[BatchClassifier] = None,
    *,
    quiet: bool = False,
    max_connections: int = DEFAULT_MAX_CONNECTIONS,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    metrics: Optional[ServiceMetrics] = None,
) -> ClassificationServer:
    """Bind a :class:`ClassificationServer` (``port=0`` picks a free port).

    The caller drives it: ``serve_forever()`` to run, ``shutdown()`` +
    ``server_close()`` to stop (and close the classifier).
    """
    if classifier is None:
        classifier = BatchClassifier()
    return ClassificationServer(
        (host, port),
        classifier,
        quiet=quiet,
        max_connections=max_connections,
        request_timeout=request_timeout,
        drain_timeout=drain_timeout,
        metrics=metrics,
    )


def run_server(server: ClassificationServer) -> None:
    """Serve a bound :class:`ClassificationServer` until Ctrl-C, with
    banner and graceful teardown (separate from :func:`make_server` so
    callers can distinguish bind failures from serving failures)."""
    bound_host, bound_port = server.server_address[:2]
    print(f"repro-radio serve: listening on http://{bound_host}:{bound_port}")
    print(
        "  POST /classify   GET /healthz   GET /stats   GET /metrics"
        "   (Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (draining in-flight requests)")
    finally:
        server.shutdown()
        server.server_close()
        server.classifier.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    classifier: Optional[BatchClassifier] = None,
) -> None:
    """Blocking convenience entry point: bind and serve until Ctrl-C."""
    run_server(make_server(host, port, classifier))
