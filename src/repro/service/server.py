"""``repro-radio serve``: a stdlib JSON endpoint over the batch classifier.

The server is a :class:`http.server.ThreadingHTTPServer` (one thread per
connection, no third-party dependencies) whose handlers all talk to one
shared :class:`~repro.service.batcher.BatchClassifier` — so concurrent
HTTP clients are coalesced into common classification batches, and every
response is served from (or written to) the same canonical-form cache.

Routes:

* ``POST /classify`` — body is one request object or
  ``{"requests": [...]}`` (see :mod:`repro.service.schema`); responds
  with one response object or ``{"ok": true, "responses": [...]}``.
  Item-level failures (malformed configuration) become per-item
  ``{"ok": false, ...}`` entries — one bad request never fails a batch.
  Successful responses carry a ``meta`` object with the classifier's
  cumulative hit/miss/collapse counters
  (:meth:`~repro.service.batcher.BatchClassifier.meta`).
* ``GET /healthz`` — liveness: ``{"ok": true, "service": ...}``.
* ``GET /stats`` — the service/cache accounting counters.

Walkthroughs (curl and a Python client) live in ``docs/service.md``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from .batcher import BatchClassifier, ServiceClosedError, Ticket
from .schema import (
    MODES,
    RequestError,
    error_response,
    parse_request,
    requests_from_body,
    response_for,
)

#: Largest accepted POST body, in bytes (8 MiB): bounds per-connection
#: memory the same way ``max_pending`` bounds the classification queue.
MAX_BODY_BYTES = 8 * 1024 * 1024


class ClassificationServer(ThreadingHTTPServer):
    """HTTP server owning the shared classifier.

    ``daemon_threads`` is set so hung clients never block shutdown.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        classifier: BatchClassifier,
        *,
        quiet: bool = False,
    ) -> None:
        self.classifier = classifier
        self.quiet = quiet
        super().__init__(address, ClassificationHandler)


class ClassificationHandler(BaseHTTPRequestHandler):
    """Request handler: JSON in, JSON out, never HTML errors."""

    server_version = "repro-radio-serve/1.0"
    #: HTTP/1.1 for keep-alive: _send_json always sets Content-Length,
    #: so persistent connections are safe, and warm high-throughput
    #: clients skip the per-request TCP handshake.
    protocol_version = "HTTP/1.1"
    server: ClassificationServer  # narrowed for the route methods

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        """Route access logs to stderr unless the server is quiet."""
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            self._send_json(400, error_response("bad Content-Length"))
            return None
        if length > MAX_BODY_BYTES:
            self._send_json(
                413, error_response(f"body exceeds {MAX_BODY_BYTES} bytes")
            )
            return None
        return self.rfile.read(length)

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        """``/healthz`` and ``/stats``."""
        if self.path == "/healthz":
            self._send_json(
                200, {"ok": True, "service": self.server_version}
            )
        elif self.path == "/stats":
            svc = self.server.classifier
            e = svc.stats.engine
            self._send_json(
                200,
                {
                    "ok": True,
                    "requests": svc.stats.submitted,
                    "fast_hits": svc.stats.fast_hits,
                    "batches": svc.stats.batches,
                    "largest_batch": svc.stats.largest_batch,
                    "classified": e.classified,
                    "cache_hits": e.cache_hits,
                    "coalesced": e.deduped,
                    "cache_entries": len(svc.cache),
                    "summary": svc.describe(),
                },
            )
        else:
            self._send_json(404, error_response(f"no route {self.path!r}"))

    def do_POST(self) -> None:
        """``/classify``: parse, submit, gather, respond."""
        if self.path != "/classify":
            self._send_json(404, error_response(f"no route {self.path!r}"))
            return
        raw = self._read_body()
        if raw is None:
            return
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, error_response(f"invalid JSON: {exc}"))
            return
        try:
            items = requests_from_body(body)
        except RequestError as exc:
            self._send_json(400, error_response(str(exc)))
            return
        batched = isinstance(body, dict) and "requests" in body

        # Parse everything first, then submit each mode's well-formed
        # items in ONE submit_many call — the whole HTTP batch crosses
        # into the dispatcher with one thread handoff per mode and
        # coalesces into the same classification batch. Bad items turn
        # into per-item errors without sinking their batch.
        parsed: List[Optional[object]] = []  # ServiceRequest | None
        responses: List[Optional[Dict]] = []
        for obj in items:
            try:
                parsed.append(parse_request(obj))
                responses.append(None)  # filled from the ticket below
            except (RequestError, ValueError) as exc:
                parsed.append(None)
                responses.append(error_response(str(exc)))

        tickets: Dict[int, Ticket] = {}
        for mode in MODES:
            index = [
                i
                for i, request in enumerate(parsed)
                if request is not None and request.mode == mode
            ]
            if index:
                try:
                    batch = self.server.classifier.submit_many(
                        [parsed[i].config for i in index], mode=mode
                    )
                except ServiceClosedError:
                    self._send_json(
                        503, error_response("service is shutting down")
                    )
                    return
                tickets.update(zip(index, batch))

        server_faults = set()  # indices whose failure is ours, not the client's
        for i, request in enumerate(parsed):
            if request is None:
                continue
            ticket = tickets[i]
            try:
                record = ticket.result()
            except Exception as exc:  # classification failure: per-item error
                responses[i] = error_response(f"classification failed: {exc}")
                server_faults.add(i)
                continue
            responses[i] = response_for(request, ticket.key, record)

        # hit/miss/collapse accounting rides on every successful
        # response (snapshot at assembly time; see BatchClassifier.meta)
        meta = self.server.classifier.meta()
        if batched:
            self._send_json(
                200, {"ok": True, "responses": responses, "meta": meta}
            )
        elif responses and responses[0].get("ok"):
            self._send_json(200, dict(responses[0], meta=meta))
        elif responses:
            # a classification fault is the server's failure (500); a
            # request the parser rejected is the client's (400)
            self._send_json(500 if 0 in server_faults else 400, responses[0])
        else:
            self._send_json(400, error_response("empty request"))


def make_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    classifier: Optional[BatchClassifier] = None,
    *,
    quiet: bool = False,
) -> ClassificationServer:
    """Bind a :class:`ClassificationServer` (``port=0`` picks a free port).

    The caller drives it: ``serve_forever()`` to run, ``shutdown()`` +
    ``server_close()`` to stop (and close the classifier).
    """
    if classifier is None:
        classifier = BatchClassifier()
    return ClassificationServer((host, port), classifier, quiet=quiet)


def run_server(server: ClassificationServer) -> None:
    """Serve a bound :class:`ClassificationServer` until Ctrl-C, with
    banner and graceful teardown (separate from :func:`make_server` so
    callers can distinguish bind failures from serving failures)."""
    bound_host, bound_port = server.server_address[:2]
    print(f"repro-radio serve: listening on http://{bound_host}:{bound_port}")
    print("  POST /classify   GET /healthz   GET /stats   (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        server.server_close()
        server.classifier.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    classifier: Optional[BatchClassifier] = None,
) -> None:
    """Blocking convenience entry point: bind and serve until Ctrl-C."""
    run_server(make_server(host, port, classifier))
