"""The adversary zoo: seeded jamming and fault strategies.

Each strategy here produces a jam schedule in the sense of
:mod:`repro.radio.faults` — a ``(global_round, node) -> bool`` callable —
but, unlike a hand-written schedule, every strategy is *seeded and
serializable*: it carries a JSON-able spec (``to_spec``) from which
:func:`~repro.adversary.specs.adversary_from_spec` rebuilds bit-identical
jam decisions. That is what lets a campaign manifest replay any trial
without pickling callables across process boundaries.

Two families:

* **Explicit** strategies (:func:`random_budget_jammer`,
  :func:`phase_targeting_jammer`, :func:`crash_sleep_faults` and its
  seeded sweep builder :func:`random_crash_sleep`) precompute their
  jammed rounds and return an
  :class:`~repro.radio.faults.ExplicitJamSchedule`, so the event-driven
  ``fast`` backend can execute them.
* **Adaptive** strategies (:class:`ReactiveJammer`) key off observed
  channel feedback round by round. They expose ``observe`` / ``reset``
  (the hooks in :mod:`repro.radio.backends.base`) instead of
  ``event_rounds``; ``backend="auto"`` therefore falls back to the
  reference loop, which stays the oracle for them.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..radio.faults import ExplicitJamSchedule

__all__ = [
    "ReactiveJammer",
    "crash_sleep_faults",
    "phase_targeting_jammer",
    "phase_targeting_for_trace",
    "random_budget_jammer",
    "random_crash_sleep",
]


def _explicit_pairs(
    pairs: Iterable[Tuple[int, object]], spec: Dict
) -> ExplicitJamSchedule:
    """Explicit schedule over ``(round, node)`` pairs with a custom spec."""
    table = set(pairs)
    return ExplicitJamSchedule(
        lambda r, v: (r, v) in table, (r for r, _ in table), spec
    )


def random_budget_jammer(
    seed: int, budget: int, horizon: int
) -> ExplicitJamSchedule:
    """A jammer spending a round budget uniformly at random.

    Picks ``min(budget, horizon)`` distinct global rounds from
    ``range(horizon)`` with ``random.Random(seed)`` and jams *every* node
    in each of them. Explicit (fast-backend compatible) and
    deterministic: the same ``(seed, budget, horizon)`` always yields
    the same schedule.
    """
    if budget < 0:
        raise ValueError("budget must be >= 0")
    if horizon < 0:
        raise ValueError("horizon must be >= 0")
    rng = random.Random(seed)
    rounds = sorted(rng.sample(range(horizon), min(budget, horizon)))
    table = set(rounds)
    spec = {
        "kind": "random_budget",
        "seed": seed,
        "budget": budget,
        "horizon": horizon,
    }
    return ExplicitJamSchedule(lambda r, v: r in table, rounds, spec)


def phase_targeting_jammer(
    *,
    sigma: int,
    phase_ends: Sequence[int],
    tags: Iterable[Tuple[object, int]],
    phase: int = 1,
    seed: int = 0,
    hits: int = 1,
) -> ExplicitJamSchedule:
    """A jammer that aims inside the Lemma 3.7 transmission blocks.

    The canonical DRIP of a feasible configuration runs in phases; phase
    ``j`` occupies local rounds ``(phase_ends[j-1], phase_ends[j]]`` and
    consists of transmission blocks of width ``2σ+1`` followed by ``σ``
    trailing listen rounds. Jamming confined to the trailing listen
    rounds is provably harmless; a single jammed round *inside* a block
    can derail the election (E18). This jammer knows that structure: for
    every node with wakeup tag ``t`` it picks ``hits`` seeded local
    rounds from the block region of the target ``phase`` and jams the
    corresponding global rounds ``t + local``.

    ``phase_ends`` and ``sigma`` come from
    :class:`~repro.core.canonical.CanonicalData`;
    :func:`phase_targeting_for_trace` derives them from a
    :class:`~repro.core.trace.ClassifierTrace` directly. Explicit, so
    the fast backend can run it.
    """
    tag_list = sorted(tags, key=lambda item: (item[1], str(item[0])))
    if phase < 1 or phase >= len(phase_ends):
        raise ValueError(
            f"phase {phase} out of range (schedule has "
            f"{len(phase_ends) - 1} phase(s))"
        )
    width = 2 * sigma + 1
    lo, hi = phase_ends[phase - 1], phase_ends[phase]
    block_region = hi - lo - sigma  # phase minus its trailing listens
    if block_region <= 0:
        raise ValueError(f"phase {phase} has no transmission blocks")
    rng = random.Random(seed)
    pairs: List[Tuple[int, object]] = []
    for v, t in tag_list:
        locals_ = rng.sample(
            range(lo + 1, lo + block_region + 1), min(hits, block_region)
        )
        pairs.extend((t + local, v) for local in locals_)
    spec = {
        "kind": "phase_targeting",
        "sigma": sigma,
        "phase_ends": list(phase_ends),
        "tags": [[v, t] for v, t in tag_list],
        "phase": phase,
        "seed": seed,
        "hits": hits,
    }
    return _explicit_pairs(pairs, spec)


def phase_targeting_for_trace(
    trace, *, phase: int = 1, seed: int = 0, hits: int = 1
) -> ExplicitJamSchedule:
    """Build :func:`phase_targeting_jammer` from a classifier trace.

    Reads ``sigma``, the canonical phase schedule and the wakeup tags
    off ``trace`` (a feasible
    :class:`~repro.core.trace.ClassifierTrace`), so callers need not
    touch :mod:`repro.core.canonical` themselves.
    """
    from ..core.canonical import build_canonical_data

    data = build_canonical_data(trace)
    cfg = trace.config
    return phase_targeting_jammer(
        sigma=data.sigma,
        phase_ends=data.phase_ends,
        tags=[(v, cfg.tag(v)) for v in cfg.nodes],
        phase=phase,
        seed=seed,
        hits=hits,
    )


def crash_sleep_faults(
    windows: Iterable[Tuple[object, int, int]],
) -> ExplicitJamSchedule:
    """Crash/sleep faults layered on the jam abstraction.

    ``windows`` is an iterable of ``(node, start, stop)``: during global
    rounds ``start <= r < stop`` the node's radio is dead — it hears
    jamming noise instead of the channel and cannot be woken by a
    message, exactly the semantics of per-node jamming. A crash-stop
    fault is a window with ``stop`` past the horizon; a sleep fault is a
    finite window. Explicit (the event rounds are the union of all
    windows), so the fast backend can run it.
    """
    wins: List[Tuple[object, int, int]] = []
    for v, start, stop in windows:
        if start < 0 or stop < start:
            raise ValueError(f"bad fault window ({v!r}, {start}, {stop})")
        wins.append((v, start, stop))
    wins.sort(key=lambda w: (w[1], w[2], str(w[0])))
    rounds = sorted({r for _, start, stop in wins for r in range(start, stop)})
    spec = {
        "kind": "crash_sleep",
        "windows": [[v, start, stop] for v, start, stop in wins],
    }
    return ExplicitJamSchedule(
        lambda r, v: any(
            v == w and start <= r < stop for w, start, stop in wins
        ),
        rounds,
        spec,
    )


def random_crash_sleep(
    seed: int,
    nodes: Sequence[object],
    *,
    count: int,
    horizon: int,
    min_len: int = 1,
    max_len: int = 8,
) -> ExplicitJamSchedule:
    """Sweep-parameterized crash/sleep faults.

    Draws ``count`` fault windows with ``random.Random(seed)``: each
    picks a victim node, a start round in ``range(horizon)`` and a
    length in ``[min_len, max_len]``. Serializes to its concrete
    ``crash_sleep`` windows, so a manifest replays the exact faults
    without re-deriving them from the sweep parameters.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if not 1 <= min_len <= max_len:
        raise ValueError("need 1 <= min_len <= max_len")
    rng = random.Random(seed)
    pool = sorted(nodes, key=str)
    windows = []
    for _ in range(count):
        v = pool[rng.randrange(len(pool))]
        start = rng.randrange(max(horizon, 1))
        stop = start + rng.randint(min_len, max_len)
        windows.append((v, start, stop))
    return crash_sleep_faults(windows)


class ReactiveJammer:
    """An adaptive jammer that reacts to observed channel activity.

    The strategy listens to the channel: whenever it observes at least
    one transmission in the current round it may jam that same round
    (every node), with probability ``probability``, until its round
    ``budget`` is spent. Decisions come from a ``random.Random(seed)``
    stream consumed once per *active* round, so the strategy is
    deterministic for a fixed execution.

    Adaptivity contract (see :mod:`repro.radio.backends.base`): the
    reference backend calls :meth:`observe` once per round after
    computing reception and before recording history entries;
    :meth:`reset` re-arms the seeded state at the start of every run so
    replays are bit-for-bit. There is no ``event_rounds`` — the fast
    backend rejects adaptive strategies and ``backend="auto"`` falls
    back to the reference loop.
    """

    __slots__ = ("seed", "probability", "budget", "_rng", "_left", "_jam_at")

    def __init__(
        self, seed: int, *, probability: float = 1.0, budget: int = 1
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if budget < 0:
            raise ValueError("budget must be >= 0")
        self.seed = seed
        self.probability = probability
        self.budget = budget
        self.reset()

    def reset(self) -> None:
        """Re-arm the seeded state (called by backends before each run)."""
        self._rng = random.Random(self.seed)
        self._left = self.budget
        self._jam_at: Optional[int] = None

    def observe(self, global_round: int, transmitter_count: int) -> None:
        """Consume one round of channel feedback and pick a jam decision.

        Called by the reference backend once per round, before the jam
        schedule is consulted for that round.
        """
        if transmitter_count >= 1 and self._left > 0:
            if self._rng.random() < self.probability:
                self._jam_at = global_round
                self._left -= 1

    def __call__(self, global_round: int, node: object) -> bool:
        """True when reception at ``node`` in ``global_round`` is jammed."""
        return global_round == self._jam_at

    def to_spec(self) -> Dict:
        """JSON-able description (inverse of ``adversary_from_spec``)."""
        return {
            "kind": "reactive",
            "seed": self.seed,
            "probability": self.probability,
            "budget": self.budget,
        }
