"""Serialization registry for adversary strategies.

Every strategy in the zoo (and every base jam schedule from
:mod:`repro.radio.faults`) describes itself as a JSON-able dict with a
``"kind"`` discriminator via ``to_spec()``. This module holds the
inverse: a registry mapping kinds to rebuilders, so campaign manifests,
engine cache keys and the ``repro-radio campaign replay`` path can turn
a spec back into bit-identical jam decisions.

The base kinds (``jam_pairs`` / ``jam_rounds`` / ``jam_nothing``)
delegate to :meth:`~repro.radio.faults.ExplicitJamSchedule.from_spec`;
the zoo kinds are registered here. Third-party strategies can join via
:func:`register_adversary_kind` — the rebuilder receives the spec dict
and must return a jam schedule whose ``to_spec()`` round-trips.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..radio.faults import ExplicitJamSchedule
from .strategies import (
    ReactiveJammer,
    crash_sleep_faults,
    phase_targeting_jammer,
    random_budget_jammer,
)

__all__ = [
    "ADVERSARY_KINDS",
    "adversary_from_spec",
    "adversary_to_spec",
    "register_adversary_kind",
]

#: Registered spec kinds -> rebuilder ``spec_dict -> jam schedule``.
ADVERSARY_KINDS: Dict[str, Callable[[Dict], object]] = {}


def register_adversary_kind(
    kind: str, builder: Callable[[Dict], object]
) -> None:
    """Register a rebuilder for adversary specs of the given ``kind``.

    ``builder(spec)`` must return a jam schedule whose ``to_spec()``
    reproduces ``spec`` (up to key order). Registering an existing kind
    raises ``ValueError`` — kinds are part of the manifest format.
    """
    if kind in ADVERSARY_KINDS:
        raise ValueError(f"adversary kind {kind!r} is already registered")
    ADVERSARY_KINDS[kind] = builder


def adversary_from_spec(spec: Dict):
    """Rebuild any known jam schedule / adversary strategy from a spec.

    Dispatches on ``spec["kind"]`` over the base jam-schedule kinds and
    every registered zoo kind. The round-trip guarantee: the rebuilt
    schedule makes exactly the same jam decisions as the one that
    produced the spec.
    """
    kind = spec.get("kind")
    builder = ADVERSARY_KINDS.get(kind)
    if builder is None:
        raise KeyError(
            f"unknown adversary kind {kind!r}; known kinds: "
            f"{sorted(ADVERSARY_KINDS)}"
        )
    return builder(spec)


def adversary_to_spec(jammer) -> Dict:
    """Spec dict of any serializable jam schedule (``None`` -> no-op).

    Convenience for manifest writers: ``None`` (no adversary) maps to
    the ``jam_nothing`` spec; anything else must expose ``to_spec``.
    """
    if jammer is None:
        return {"kind": "jam_nothing"}
    to_spec = getattr(jammer, "to_spec", None)
    if to_spec is None:
        raise TypeError(
            f"{type(jammer).__name__} does not expose to_spec(); only "
            "serializable schedules can enter a manifest"
        )
    return to_spec()


register_adversary_kind("jam_pairs", ExplicitJamSchedule.from_spec)
register_adversary_kind("jam_rounds", ExplicitJamSchedule.from_spec)
register_adversary_kind("jam_nothing", ExplicitJamSchedule.from_spec)
register_adversary_kind(
    "random_budget",
    lambda spec: random_budget_jammer(
        spec["seed"], spec["budget"], spec["horizon"]
    ),
)
register_adversary_kind(
    "phase_targeting",
    lambda spec: phase_targeting_jammer(
        sigma=spec["sigma"],
        phase_ends=spec["phase_ends"],
        tags=[(v, t) for v, t in spec["tags"]],
        phase=spec["phase"],
        seed=spec["seed"],
        hits=spec["hits"],
    ),
)
register_adversary_kind(
    "crash_sleep",
    lambda spec: crash_sleep_faults(
        (v, start, stop) for v, start, stop in spec["windows"]
    ),
)
register_adversary_kind(
    "reactive",
    lambda spec: ReactiveJammer(
        spec["seed"],
        probability=spec["probability"],
        budget=spec["budget"],
    ),
)
