"""``repro.adversary`` — the zoo of seeded, serializable adversaries.

The paper's model is failure-free; :mod:`repro.radio.faults` added
explicit jam schedules; this package adds *strategies*: seeded
stochastic and adaptive adversaries that describe themselves as
JSON-able specs, so robustness campaigns (:mod:`repro.campaigns`) can
sweep thousands of them and replay any trial bit-for-bit from a
manifest.

The zoo (:mod:`~repro.adversary.strategies`):

* :func:`random_budget_jammer` — spends a round budget uniformly at
  random over a horizon;
* :func:`phase_targeting_jammer` / :func:`phase_targeting_for_trace` —
  aims inside the Lemma 3.7 transmission blocks of the canonical DRIP;
* :func:`crash_sleep_faults` / :func:`random_crash_sleep` — per-node
  crash/sleep fault windows layered on the jam abstraction;
* :class:`ReactiveJammer` — adaptive, keys off observed channel
  feedback (reference backend only; ``auto`` falls back).

Serialization (:mod:`~repro.adversary.specs`):
:func:`adversary_from_spec` rebuilds any known kind from its spec dict,
:func:`adversary_to_spec` is the forward direction, and
:func:`register_adversary_kind` extends the registry.
"""

from .specs import (
    ADVERSARY_KINDS,
    adversary_from_spec,
    adversary_to_spec,
    register_adversary_kind,
)
from .strategies import (
    ReactiveJammer,
    crash_sleep_faults,
    phase_targeting_for_trace,
    phase_targeting_jammer,
    random_budget_jammer,
    random_crash_sleep,
)

__all__ = [
    "ADVERSARY_KINDS",
    "ReactiveJammer",
    "adversary_from_spec",
    "adversary_to_spec",
    "crash_sleep_faults",
    "phase_targeting_for_trace",
    "phase_targeting_jammer",
    "random_budget_jammer",
    "random_crash_sleep",
    "register_adversary_kind",
]
