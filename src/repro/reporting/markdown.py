"""Markdown rendering for experiment reports.

EXPERIMENTS.md is generated, not hand-maintained: each experiment section
renders its measured table next to the paper's claim through these
helpers, so the document always reflects the code that produced it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def md_table(
    rows: Iterable[Sequence[object]],
    headers: Sequence[str],
) -> str:
    """A GitHub-flavoured markdown table."""
    head = list(headers)
    body = [[_cell(x) for x in row] for row in rows]
    for row in body:
        if len(row) != len(head):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(head)}"
            )
    lines = [
        "| " + " | ".join(str(h) for h in head) + " |",
        "|" + "|".join(" --- " for _ in head) + "|",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in body]
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value).replace("|", "\\|")


def md_section(title: str, *blocks: str, level: int = 2) -> str:
    """A heading followed by its content blocks, blank-line separated."""
    if level < 1:
        raise ValueError("heading level must be >= 1")
    parts = ["#" * level + " " + title]
    parts += [b for b in blocks if b]
    return "\n\n".join(parts)


def md_kv(pairs: Iterable[Sequence[object]]) -> str:
    """A bullet list of ``key: value`` facts."""
    return "\n".join(f"- **{k}**: {_cell(v)}" for k, v in pairs)


def md_check(label: str, ok: bool) -> str:
    """A single pass/fail line."""
    return f"- {'✅' if ok else '❌'} {label}"


def md_checklist(items: Iterable[Sequence[object]]) -> str:
    """Pass/fail lines from ``(label, ok)`` pairs."""
    return "\n".join(md_check(label, ok) for label, ok in items)


class MarkdownDoc:
    """Incremental builder for a generated markdown document."""

    def __init__(self, title: str, preamble: Optional[str] = None) -> None:
        self._parts: List[str] = ["# " + title]
        if preamble:
            self._parts.append(preamble)

    def add(self, *blocks: str) -> "MarkdownDoc":
        """Append content blocks (empty blocks skipped)."""
        self._parts.extend(b for b in blocks if b)
        return self

    def section(self, title: str, *blocks: str, level: int = 2) -> "MarkdownDoc":
        """Append a heading plus its content blocks."""
        return self.add(md_section(title, *blocks, level=level))

    def render(self) -> str:
        """The full document text."""
        return "\n\n".join(self._parts) + "\n"

    def write(self, path) -> None:
        """Write the rendered document to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render())
