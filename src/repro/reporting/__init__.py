"""Plain-text reporting: tables, series charts and benchmark artifacts
for experiments."""

from .bench import (
    BenchResult,
    bench_json_dir,
    bench_json_path,
    write_bench_result,
)
from .series import ascii_chart, series_table, slope_annotation
from .tables import format_table, kv_block

from .markdown import (
    MarkdownDoc,
    md_check,
    md_checklist,
    md_kv,
    md_section,
    md_table,
)
from .timeline import legend, timeline, transmission_density

__all__ = [
    "BenchResult",
    "MarkdownDoc",
    "ascii_chart",
    "bench_json_dir",
    "bench_json_path",
    "format_table",
    "kv_block",
    "legend",
    "md_check",
    "md_checklist",
    "md_kv",
    "md_section",
    "md_table",
    "series_table",
    "slope_annotation",
    "timeline",
    "transmission_density",
    "write_bench_result",
]
