"""Plain-text reporting: tables and series charts for experiments."""

from .series import ascii_chart, series_table, slope_annotation
from .tables import format_table, kv_block

from .markdown import (
    MarkdownDoc,
    md_check,
    md_checklist,
    md_kv,
    md_section,
    md_table,
)
from .timeline import legend, timeline, transmission_density

__all__ = [
    "MarkdownDoc",
    "ascii_chart",
    "format_table",
    "kv_block",
    "legend",
    "md_check",
    "md_checklist",
    "md_kv",
    "md_section",
    "md_table",
    "series_table",
    "slope_annotation",
    "timeline",
    "transmission_density",
]
