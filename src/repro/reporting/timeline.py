"""ASCII space–time diagrams of radio executions.

Debugging a distributed protocol means staring at who transmitted when.
This module renders an :class:`~repro.radio.events.ExecutionResult` as a
rounds × nodes grid:

* ``T`` — the node transmitted this global round,
* ``.`` — awake and heard silence,
* ``*`` — heard collision noise,
* ``<`` — received a message,
* ``z`` — still asleep,
* ``#`` — terminated,
* ``!`` — woke up this round (forced or spontaneous).

The renderer works from the per-node histories plus wakeup data, so it
needs no trace recording; passing the round trace adds a transmitter
count column. Long executions are windowed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..radio.events import ExecutionResult
from ..radio.history import History
from ..radio.model import COLLISION, SILENCE, Message

ASLEEP = "z"
WAKE = "!"
TRANSMIT = "T"
SILENT = "."
NOISE = "*"
RECEIVE = "<"
DONE = "#"


def _cell(execution: ExecutionResult, v: object, r: int) -> str:
    wake = execution.wake_rounds[v]
    if r < wake:
        return ASLEEP
    if r == wake:
        return WAKE
    local = r - wake
    done = execution.done_local[v]
    if local > done:
        return DONE
    entry = execution.histories[v][local]
    if entry is COLLISION:
        return NOISE
    if isinstance(entry, Message):
        return RECEIVE
    return SILENT


def timeline(
    execution: ExecutionResult,
    *,
    start: int = 0,
    end: Optional[int] = None,
    mark_transmitters: bool = True,
) -> str:
    """Render the execution between global rounds ``start`` and ``end``.

    A silent-history cell cannot distinguish "listened, heard silence"
    from "transmitted" (transmitters hear nothing); with
    ``mark_transmitters`` (needs a recorded trace) transmission rounds
    are overwritten with ``T``. Without a trace, cells fall back to the
    history-only view.
    """
    last = max(
        execution.wake_rounds[v] + execution.done_local[v]
        for v in execution.nodes
    )
    end = last if end is None else min(end, last)
    if start < 0 or end < start:
        raise ValueError(f"bad window [{start}, {end}]")

    nodes = execution.nodes
    grid: Dict[object, List[str]] = {
        v: [_cell(execution, v, r) for r in range(start, end + 1)] for v in nodes
    }
    if mark_transmitters and execution.trace is not None:
        for rec in execution.trace:
            if start <= rec.global_round <= end:
                for v in rec.transmitters:
                    grid[v][rec.global_round - start] = TRANSMIT

    width = max(len(str(v)) for v in nodes)
    header = " " * (width + 2) + "".join(
        str((start + i) // 10 % 10) if (start + i) % 10 == 0 else " "
        for i in range(end - start + 1)
    )
    ruler = " " * (width + 2) + "".join(
        str((start + i) % 10) for i in range(end - start + 1)
    )
    lines = [header, ruler]
    for v in nodes:
        lines.append(f"{str(v):>{width}} |" + "".join(grid[v]))
    return "\n".join(lines)


def legend() -> str:
    """One-line key for the timeline symbols."""
    return (
        f"{ASLEEP}=asleep {WAKE}=wakeup {TRANSMIT}=transmit "
        f"{SILENT}=silence {NOISE}=collision {RECEIVE}=message {DONE}=done"
    )


def transmission_density(execution: ExecutionResult) -> float:
    """Fraction of awake node-rounds that carried a transmission.

    Needs a recorded trace. Canonical executions are overwhelmingly
    silent (one transmission per node per phase) — the sparsity the
    :mod:`repro.radio.history` storage exploits; this measures it.
    """
    if execution.trace is None:
        raise ValueError("simulation was run without trace recording")
    transmissions = sum(len(rec.transmitters) for rec in execution.trace)
    awake_rounds = sum(execution.done_local[v] for v in execution.nodes)
    return transmissions / awake_rounds if awake_rounds else 0.0
