"""Text-mode series rendering: figure-style output for scaling sweeps."""

from __future__ import annotations

from typing import Sequence


def ascii_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    title: str = "",
    width: int = 56,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A crude scatter chart: good enough to see linear vs log growth in a
    terminal, which is all the paper's "figures" need here."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return f"{title}\n(empty series)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} in [{y_lo:g}, {y_hi:g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} in [{x_lo:g}, {x_hi:g}]")
    return "\n".join(lines)


def series_table(xs: Sequence[float], *columns, headers: Sequence[str]) -> str:
    """Columnar dump of one or more series against ``xs``."""
    from .tables import format_table

    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [col[i] for col in columns])
    return format_table(headers, rows)


def slope_annotation(xs: Sequence[float], ys: Sequence[float]) -> str:
    """One-line log-log slope annotation for growth-rate figures."""
    import numpy as np

    xs_a, ys_a = np.asarray(xs, float), np.asarray(ys, float)
    mask = (xs_a > 0) & (ys_a > 0)
    if mask.sum() < 2:
        return "slope: n/a"
    slope, _ = np.polyfit(np.log(xs_a[mask]), np.log(ys_a[mask]), 1)
    return f"log-log slope ≈ {slope:.2f}"
