"""Machine-readable perf trajectory: one JSON artifact per benchmark.

The speedup gates in ``benchmarks/bench_e*.py`` assert a floor and move
on; the *measured* numbers used to live only in scrollback. This module
gives each gated experiment a durable, machine-readable record —
``BENCH_E23.json`` and friends — so the performance trajectory of the
repo can be tracked across commits (CI uploads the files as artifacts).

Schema (``"schema": 1``)::

    {
      "schema": 1,
      "experiment": "E23",          // experiment id
      "workload": {...},            // what was timed (sizes, families)
      "timings_s": {"reference": 1.9, "compiled": 0.08},
      "speedup": 23.7,              // ratio the gate checks
      "floor": 5.0,                 // the gate's threshold
      "pass": true,                 // speedup >= floor
      "host": {...}                 // interpreter/OS/cpus (see host_metadata)
    }

Artifacts are written to :func:`bench_json_dir` — the current directory
unless the ``REPRO_BENCH_JSON_DIR`` environment variable points
elsewhere (CI sets it to the artifact staging directory). Writes are
atomic (tmp + rename), so a crashed benchmark never leaves a torn file.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Environment variable overriding where ``BENCH_E*.json`` files land.
BENCH_JSON_DIR_ENV = "REPRO_BENCH_JSON_DIR"

#: Current artifact schema version.
BENCH_SCHEMA_VERSION = 1


@dataclass
class BenchResult:
    """One gated benchmark measurement, ready to serialize.

    ``timings_s`` maps contender name (e.g. ``"reference"``,
    ``"compiled"``) to wall seconds; ``speedup`` is the ratio the gate
    asserts against ``floor``; ``passed`` records whether it cleared.
    ``workload`` is a small JSON-able dict describing what was timed.
    """

    experiment: str
    workload: Dict[str, object] = field(default_factory=dict)
    timings_s: Dict[str, float] = field(default_factory=dict)
    speedup: float = 0.0
    floor: float = 0.0
    passed: bool = False

    def as_dict(self) -> Dict[str, object]:
        """The schema-versioned JSON payload."""
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "experiment": self.experiment,
            "workload": self.workload,
            "timings_s": {k: round(v, 6) for k, v in self.timings_s.items()},
            "speedup": round(self.speedup, 3),
            "floor": self.floor,
            "pass": self.passed,
            "host": host_metadata(),
        }


def host_metadata() -> Dict[str, object]:
    """Where a benchmark number came from: interpreter, OS, core count.

    Timings are only comparable across commits when the hardware and
    runtime match, so every ``BENCH_E*.json`` embeds this block (the
    addition is schema-compatible: readers of the original fields are
    unaffected). ``numpy`` is ``None`` when the accelerated stack is
    absent — those runs time the pure-Python paths.
    """
    from ..analysis.parallel import available_cpus

    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "available_cpus": available_cpus(),
        "numpy": numpy_version,
    }


def bench_json_dir() -> str:
    """Directory receiving benchmark artifacts (env override or cwd)."""
    return os.environ.get(BENCH_JSON_DIR_ENV) or os.getcwd()


def bench_json_path(experiment: str, directory: Optional[str] = None) -> str:
    """Artifact path for an experiment id, e.g. ``BENCH_E23.json``."""
    return os.path.join(
        directory or bench_json_dir(), f"BENCH_{experiment.upper()}.json"
    )


def write_bench_result(
    result: BenchResult, directory: Optional[str] = None
) -> str:
    """Atomically write ``result`` as JSON; returns the path written.

    Benchmarks call this *before* asserting their floor, so a failing
    gate still leaves the measured numbers behind for diagnosis.
    """
    path = bench_json_path(result.experiment, directory)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(result.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path
