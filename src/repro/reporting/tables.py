"""Plain-text tables for experiment output (no plotting dependencies)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[object],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    aligns: Optional[Sequence[str]] = None,
) -> str:
    """Render an ASCII table.

    ``aligns`` is a string per column: ``"l"`` or ``"r"`` (default: right
    for things that look numeric, left otherwise).
    """
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    str_headers = [_cell(h) for h in headers]
    ncols = len(str_headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(f"row {r!r} has {len(r)} cells, expected {ncols}")

    widths = [len(h) for h in str_headers]
    for r in str_rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))

    if aligns is None:
        aligns = [
            "r" if all(_numericish(r[i]) for r in str_rows) and str_rows else "l"
            for i in range(ncols)
        ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for c, w, a in zip(cells, widths, aligns):
            parts.append(c.rjust(w) if a == "r" else c.ljust(w))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(fmt_row(str_headers))
    out.append(sep)
    for r in str_rows:
        out.append(fmt_row(r))
    out.append(sep)
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _numericish(s: str) -> bool:
    s = s.strip().rstrip("x%")
    if not s or s == "-":
        return True
    try:
        float(s)
        return True
    except ValueError:
        return False


def kv_block(title: str, pairs: Iterable[Sequence[object]]) -> str:
    """A simple aligned key/value block."""
    items = [(str(k), _cell(v)) for k, v in pairs]
    width = max((len(k) for k, _ in items), default=0)
    lines = [title]
    for k, v in items:
        lines.append(f"  {k.ljust(width)} : {v}")
    return "\n".join(lines)
