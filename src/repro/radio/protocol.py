"""DRIP protocol interfaces and the patient-DRIP transformation.

A *Distributed Radio Interaction Protocol* (DRIP, paper Section 2.2) is a
function ``D`` mapping a node's history ``H[0 .. i-1]`` to the action it
performs in local round ``i`` (listen / transmit(M) / terminate). Here a
DRIP is an object with a ``decide(history)`` method; implementations may
cache state, but the contract is that the returned action depends only on
the history contents (the simulator instantiates one object per node, so
this is equivalent to the pure-function formulation).

This module also implements the Lemma 3.12 transformation: given any DRIP
``D`` (and decision function ``f``), build a *patient* DRIP ``D_pat`` that
listens for ``s_w = min(σ, rcv_w)`` rounds after wakeup and then simulates
``D`` on the shifted history, together with the shifted decision function
``f_pat``. Patience guarantees every node wakes up spontaneously.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional

from .history import History
from .model import LISTEN, TERMINATE, Action, Transmit


class DRIP(ABC):
    """A deterministic distributed radio interaction protocol."""

    @abstractmethod
    def decide(self, history: History) -> Action:
        """Action for local round ``len(history)`` given ``H[0..len-1]``.

        The simulator calls this exactly once per local round ``i >= 1``
        of an awake, non-terminated node (round 0 is the wakeup round, in
        which a node never acts).
        """


class Commitment:
    """A :class:`ScheduleOblivious` protocol's promise about its future.

    Three kinds exist, each anchored at a local ``round``:

    * ``TRANSMIT`` — the node listens in every local round before
      ``round`` and transmits ``message`` in ``round``;
    * ``TERMINATE`` — the node listens before ``round`` and terminates
      in ``round``;
    * ``RECHECK`` — the node listens through ``round - 1``; its behaviour
      from ``round`` on depends on history entries it has not seen yet,
      so the executor must query it again once ``H[0 .. round-1]`` is
      known.

    The binding contract that makes event-driven execution sound:
    ``TRANSMIT``/``TERMINATE`` commitments are *unconditional* — they
    hold no matter which entries are appended to the history before
    ``round``.
    """

    TRANSMIT = "transmit"
    TERMINATE = "terminate"
    RECHECK = "recheck"

    __slots__ = ("kind", "round", "message")

    def __init__(self, kind: str, round_: int, message: object = None) -> None:
        self.kind = kind
        self.round = round_
        self.message = message

    @classmethod
    def transmit(cls, round_: int, message: object) -> "Commitment":
        """Commit to transmitting ``message`` in local round ``round_``."""
        return cls(cls.TRANSMIT, round_, message)

    @classmethod
    def terminate(cls, round_: int) -> "Commitment":
        """Commit to terminating in local round ``round_``."""
        return cls(cls.TERMINATE, round_)

    @classmethod
    def recheck(cls, round_: int) -> "Commitment":
        """Listen through ``round_ - 1``; query again at ``round_``."""
        return cls(cls.RECHECK, round_)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == self.TRANSMIT:
            return f"Commitment.transmit({self.round}, {self.message!r})"
        return f"Commitment.{self.kind}({self.round})"


class ScheduleOblivious(ABC):
    """Optional DRIP capability: a precomputable transmission timetable.

    A protocol is *schedule-oblivious* when, at any point, it can promise
    its next observable action (transmission or termination) as a pure
    function of the history prefix it has already seen — listening in
    every round up to that action regardless of what it hears in between.
    The canonical DRIP is the prime example: within a phase its single
    transmission round is fixed by the phase-start ``tBlock`` match, and
    nothing heard mid-phase changes it (Lemma 3.8).

    Implementations keep :meth:`DRIP.decide` as the ground truth; the
    fast simulation backend uses :meth:`next_commitment` only to *skip*
    provably silent rounds and re-validates each committed action against
    ``decide`` when it falls due.
    """

    @abstractmethod
    def next_commitment(self, history: History) -> Commitment:
        """The node's next :class:`Commitment` given ``H[0..len-1]``.

        The returned round is node-local and must be ``>= len(history)``
        (strictly greater for ``RECHECK``, which would otherwise make no
        progress).
        """


class FunctionDRIP(DRIP):
    """Wrap a plain callable ``history -> action`` as a DRIP."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[History], Action]) -> None:
        self._fn = fn

    def decide(self, history: History) -> Action:
        return self._fn(history)


class AlwaysListenDRIP(DRIP, ScheduleOblivious):
    """Listen forever until ``horizon`` rounds pass, then terminate.

    Useful as a null protocol in tests and impossibility experiments.
    """

    __slots__ = ("horizon",)

    def __init__(self, horizon: int) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.horizon = horizon

    def decide(self, history: History) -> Action:
        if len(history) >= self.horizon:
            return TERMINATE
        return LISTEN

    def next_commitment(self, history: History) -> Commitment:
        """Unconditional: listen until ``horizon``, then terminate."""
        return Commitment.terminate(max(len(history), self.horizon))


#: A program factory maps a node id to the DRIP instance that node runs.
#: Anonymous algorithms must ignore the node id (see
#: :func:`anonymous_factory`); labeled baselines may use it.
ProgramFactory = Callable[[object], DRIP]


def anonymous_factory(make: Callable[[], DRIP]) -> ProgramFactory:
    """Factory for anonymous protocols: every node gets an identically
    constructed program, regardless of its id."""

    def factory(_node_id: object) -> DRIP:
        return make()

    return factory


class LeaderElectionAlgorithm:
    """A dedicated leader election algorithm: a DRIP plus decision function.

    ``decision`` maps a node's terminal history ``H[0 .. done_v]`` to 0/1;
    the algorithm solves leader election on configuration ``G`` when the
    decision is 1 for exactly one node (paper Section 2.3).
    """

    __slots__ = ("factory", "decision", "name")

    def __init__(
        self,
        factory: ProgramFactory,
        decision: Callable[[History], int],
        name: str = "unnamed",
    ) -> None:
        self.factory = factory
        self.decision = decision
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LeaderElectionAlgorithm({self.name!r})"


class PatientWrapper(DRIP):
    """The Lemma 3.12 construction ``D_pat`` for a single node.

    The node listens for its first ``s_w = min(span, rcv_w)`` local rounds
    (``rcv_w`` = first local round in which a message is received) and then
    executes the wrapped DRIP ``D`` on the history suffix starting at round
    ``s_w`` — so if a message arrived at ``rcv_w <= span``, the inner
    protocol sees it as its forced-wakeup entry ``H[0] = (M)``.
    """

    __slots__ = ("inner", "span", "_inner_history", "_s")

    def __init__(self, inner: DRIP, span: int) -> None:
        if span < 0:
            raise ValueError("span must be >= 0")
        self.inner = inner
        self.span = span
        self._inner_history = History()
        self._s: Optional[int] = None  # resolved s_w once known

    def _resolve_s(self, history: History) -> Optional[int]:
        """Determine s_w if it is already determined by ``history``."""
        rcv = history.first_message_round()
        if rcv is not None:
            return min(self.span, rcv)
        if len(history) > self.span:
            # no message in rounds 0..span -> s_w = span
            return self.span
        return None  # still in the undecided listening window

    def decide(self, history: History) -> Action:
        i = len(history)  # deciding action of local round i
        if self._s is None:
            self._s = self._resolve_s(history)
        if self._s is None or i <= self._s:
            return LISTEN
        # Feed the inner protocol the outer entries s_w .. i-1.
        while len(self._inner_history) < i - self._s:
            outer_idx = self._s + len(self._inner_history)
            self._inner_history.append(history[outer_idx])
        return self.inner.decide(self._inner_history)


def patient_span_of(history: History, span: int) -> int:
    """Recover ``s_w`` from a node's *terminal* patient-execution history."""
    rcv = history.first_message_round()
    if rcv is not None and rcv <= span:
        return min(span, rcv)
    return span


def make_patient(
    algorithm: LeaderElectionAlgorithm, span: int
) -> LeaderElectionAlgorithm:
    """Lift a leader election algorithm to its patient version (Lemma 3.12).

    Builds ``(D_pat, f_pat)`` with
    ``f_pat(H[0..done]) = f(H[s_w..done])``.
    """

    def factory(node_id: object) -> DRIP:
        return PatientWrapper(algorithm.factory(node_id), span)

    def decision(history: History) -> int:
        s = patient_span_of(history, span)
        inner = History()
        for i in range(s, len(history)):
            inner.append(history[i])
        return algorithm.decision(inner)

    return LeaderElectionAlgorithm(
        factory, decision, name=f"patient({algorithm.name}, span={span})"
    )


class ScheduleDRIP(DRIP, ScheduleOblivious):
    """Transmit fixed messages on a fixed local-round schedule, then stop.

    ``schedule`` maps local round -> message payload. The node listens in
    all other rounds and terminates in round ``done_round``. This is the
    workhorse for hand-built counterexample protocols in the negative-result
    experiments (Propositions 4.4 and 4.5).
    """

    __slots__ = ("schedule", "done_round")

    def __init__(self, schedule, done_round: int) -> None:
        self.schedule = dict(schedule)
        if self.schedule and done_round <= max(self.schedule):
            raise ValueError("done_round must exceed the last scheduled round")
        if done_round < 1:
            raise ValueError("done_round must be >= 1")
        self.done_round = done_round

    def decide(self, history: History) -> Action:
        i = len(history)
        if i >= self.done_round:
            return TERMINATE
        if i in self.schedule:
            return Transmit(self.schedule[i])
        return LISTEN

    def next_commitment(self, history: History) -> Commitment:
        """Unconditional: the whole timetable is hard-coded up front."""
        i = len(history)
        upcoming = [t for t in self.schedule if t >= i]
        if upcoming:
            t = min(upcoming)
            return Commitment.transmit(t, self.schedule[t])
        return Commitment.terminate(max(i, self.done_round))
