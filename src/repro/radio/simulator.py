"""Synchronous radio-network simulator with collision detection.

This is the substrate every experiment in the repository runs on. It
implements the communication model of the paper's Section 1.1/2.1 exactly:

* time proceeds in synchronous global rounds ``0, 1, 2, ...``;
* in each round an awake node either transmits to all neighbours or
  listens; a listening node hears a message iff exactly one neighbour
  transmits, hears collision noise ``(∗)`` iff two or more transmit, and
  hears silence otherwise; a transmitting node hears nothing (``(∅)``);
* a sleeping node ``v`` wakes up *forced* in the first global round in
  which it receives a message (exactly one neighbour transmits), and
  *spontaneously* in global round ``t_v`` otherwise; collision noise does
  not deliver a message and therefore does not wake a sleeping node;
* local round 0 is the wakeup round — a node never acts in it, and its
  history entry ``H[0]`` records what was heard at wakeup ((M) on forced
  wakeup, (∅)/(∗) on spontaneous wakeup);
* nodes are anonymous and deterministic: behaviour is a function of the
  history only (the per-node ``DRIP`` objects returned by the program
  factory).

Since the backend refactor the actual execution lives in
:mod:`repro.radio.backends`: the semantics above are implemented by the
``reference`` backend (the per-round oracle loop), and
:class:`~repro.radio.protocol.ScheduleOblivious` protocols can run on
the event-driven ``fast`` backend instead — bit-for-bit the same
:class:`~repro.radio.events.ExecutionResult`, orders of magnitude fewer
operations on sparse executions. The ``backend=`` knob accepts
``"reference"``, ``"fast"`` or ``"auto"`` (the default: fast exactly
when every program is schedule-oblivious).

The simulator accepts any "network" object exposing ``nodes`` (iterable of
sortable ids), ``neighbors(v)`` and ``tag(v)`` —
:class:`repro.core.configuration.Configuration` satisfies this protocol.
"""

from __future__ import annotations

from .backends import (
    DEFAULT_MAX_ROUNDS,
    BackendUnsupported,
    ProtocolViolation,
    SimulationSpec,
    SimulationTimeout,
    resolve_backend,
)
from .events import ExecutionResult
from .protocol import ProgramFactory

__all__ = [
    "DEFAULT_MAX_ROUNDS",
    "BackendUnsupported",
    "ProtocolViolation",
    "RadioSimulator",
    "SimulationTimeout",
    "simulate",
]


class RadioSimulator:
    """Simulate one protocol execution on one configuration.

    Parameters
    ----------
    network:
        object with ``nodes``, ``neighbors(v)``, ``tag(v)``.
    factory:
        maps node id -> :class:`~repro.radio.protocol.DRIP` instance.
        Anonymous protocols ignore the id.
    max_rounds:
        hard cap on global rounds (raises :class:`SimulationTimeout`
        when round ``max_rounds`` would start with nodes still active).
    record_trace:
        keep per-round :class:`~repro.radio.events.RoundRecord` objects.
    backend:
        ``"reference"``, ``"fast"`` or ``"auto"`` (default) — see
        :mod:`repro.radio.backends`.
    """

    def __init__(
        self,
        network,
        factory: ProgramFactory,
        *,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        record_trace: bool = False,
        backend: str = "auto",
    ) -> None:
        self._spec = SimulationSpec(
            network,
            factory,
            max_rounds=max_rounds,
            record_trace=record_trace,
        )
        self._backend = backend

    @property
    def spec(self) -> SimulationSpec:
        """The normalized workload description handed to the backend."""
        return self._spec

    def run(self) -> ExecutionResult:
        """Execute until every node has terminated; return the result."""
        return resolve_backend(self._backend, self._spec).run(self._spec)


def simulate(
    network,
    factory: ProgramFactory,
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    backend: str = "auto",
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`RadioSimulator`."""
    return RadioSimulator(
        network,
        factory,
        max_rounds=max_rounds,
        record_trace=record_trace,
        backend=backend,
    ).run()
