"""Synchronous radio-network simulator with collision detection.

This is the substrate every experiment in the repository runs on. It
implements the communication model of the paper's Section 1.1/2.1 exactly:

* time proceeds in synchronous global rounds ``0, 1, 2, ...``;
* in each round an awake node either transmits to all neighbours or
  listens; a listening node hears a message iff exactly one neighbour
  transmits, hears collision noise ``(∗)`` iff two or more transmit, and
  hears silence otherwise; a transmitting node hears nothing (``(∅)``);
* a sleeping node ``v`` wakes up *forced* in the first global round in
  which it receives a message (exactly one neighbour transmits), and
  *spontaneously* in global round ``t_v`` otherwise; collision noise does
  not deliver a message and therefore does not wake a sleeping node;
* local round 0 is the wakeup round — a node never acts in it, and its
  history entry ``H[0]`` records what was heard at wakeup ((M) on forced
  wakeup, (∅)/(∗) on spontaneous wakeup);
* nodes are anonymous and deterministic: behaviour is a function of the
  history only (the per-node ``DRIP`` objects returned by the program
  factory).

The simulator accepts any "network" object exposing ``nodes`` (iterable of
sortable ids), ``neighbors(v)`` and ``tag(v)`` —
:class:`repro.core.configuration.Configuration` satisfies this protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import FORCED, SPONTANEOUS, ExecutionResult, RoundRecord
from .history import History
from .model import COLLISION, LISTEN, SILENCE, TERMINATE, Message, Transmit
from .protocol import DRIP, ProgramFactory

#: Default ceiling on simulated global rounds; prevents broken protocols
#: from hanging the test suite. Callers with legitimately long executions
#: pass an explicit ``max_rounds``.
DEFAULT_MAX_ROUNDS = 1_000_000

_ASLEEP, _AWAKE, _DONE = 0, 1, 2


class SimulationTimeout(RuntimeError):
    """Raised when a simulation exceeds its round budget."""


class ProtocolViolation(RuntimeError):
    """Raised when a DRIP returns something that is not a valid action."""


class RadioSimulator:
    """Simulate one protocol execution on one configuration.

    Parameters
    ----------
    network:
        object with ``nodes``, ``neighbors(v)``, ``tag(v)``.
    factory:
        maps node id -> :class:`~repro.radio.protocol.DRIP` instance.
        Anonymous protocols ignore the id.
    max_rounds:
        hard cap on global rounds (raises :class:`SimulationTimeout`).
    record_trace:
        keep per-round :class:`~repro.radio.events.RoundRecord` objects.
    """

    def __init__(
        self,
        network,
        factory: ProgramFactory,
        *,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        record_trace: bool = False,
    ) -> None:
        self._nodes: List[object] = sorted(network.nodes)
        if not self._nodes:
            raise ValueError("network has no nodes")
        self._adj: Dict[object, Tuple[object, ...]] = {
            v: tuple(sorted(network.neighbors(v))) for v in self._nodes
        }
        self._tags: Dict[object, int] = {v: network.tag(v) for v in self._nodes}
        for v, t in self._tags.items():
            if t < 0:
                raise ValueError(f"negative wakeup tag at node {v!r}")
        self._programs: Dict[object, DRIP] = {v: factory(v) for v in self._nodes}
        self._max_rounds = max_rounds
        self._record_trace = record_trace

    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        """Execute until every node has terminated; return the result."""
        nodes = self._nodes
        adj = self._adj
        tags = self._tags
        programs = self._programs

        state: Dict[object, int] = {v: _ASLEEP for v in nodes}
        histories: Dict[object, History] = {v: History() for v in nodes}
        wake_rounds: Dict[object, int] = {}
        wake_kinds: Dict[object, str] = {}
        done_local: Dict[object, int] = {}
        trace: Optional[List[RoundRecord]] = [] if self._record_trace else None

        remaining = len(nodes)  # nodes not yet DONE
        # Nodes sorted by tag let us wake spontaneously without a full scan.
        by_tag = sorted(nodes, key=lambda v: (tags[v], v))
        next_spont = 0  # index into by_tag of the next candidate wakeup

        r = 0
        while remaining:
            if r > self._max_rounds:
                raise SimulationTimeout(
                    f"simulation exceeded {self._max_rounds} rounds "
                    f"({remaining} node(s) still active)"
                )

            # --- 1. collect decisions of awake nodes (local round >= 1) ---
            transmitters: Dict[object, object] = {}
            terminating: List[object] = []
            for v in nodes:
                if state[v] != _AWAKE or wake_rounds[v] == r:
                    continue
                action = programs[v].decide(histories[v])
                if action is LISTEN:
                    continue
                if action is TERMINATE:
                    terminating.append(v)
                elif isinstance(action, Transmit):
                    transmitters[v] = action.message
                else:
                    raise ProtocolViolation(
                        f"node {v!r} returned invalid action {action!r} "
                        f"in local round {len(histories[v])}"
                    )

            # --- 2. compute what each node receives ---------------------
            recv_count: Dict[object, int] = {}
            recv_msg: Dict[object, object] = {}
            for t, msg in transmitters.items():
                for u in adj[t]:
                    recv_count[u] = recv_count.get(u, 0) + 1
                    recv_msg[u] = msg

            # --- 3. record history entries for awake nodes --------------
            for v in nodes:
                if state[v] != _AWAKE or wake_rounds[v] == r:
                    continue
                if v in transmitters:
                    entry = SILENCE
                else:
                    k = recv_count.get(v, 0)
                    if k == 0:
                        entry = SILENCE
                    elif k == 1:
                        entry = Message(recv_msg[v])
                    else:
                        entry = COLLISION
                histories[v].append(entry)

            # --- 4. terminations ----------------------------------------
            for v in terminating:
                state[v] = _DONE
                done_local[v] = len(histories[v]) - 1  # the terminate round
                remaining -= 1

            # --- 5. wakeups (forced by message, else spontaneous at tag) -
            wakeups: List[Tuple[object, str]] = []
            for v, k in recv_count.items():
                if state[v] == _ASLEEP and k == 1:
                    state[v] = _AWAKE
                    wake_rounds[v] = r
                    wake_kinds[v] = FORCED
                    histories[v].append(Message(recv_msg[v]))
                    wakeups.append((v, FORCED))
            while next_spont < len(by_tag) and tags[by_tag[next_spont]] <= r:
                v = by_tag[next_spont]
                next_spont += 1
                if state[v] != _ASLEEP:
                    continue  # woke up forced in this or an earlier round
                state[v] = _AWAKE
                wake_rounds[v] = r
                wake_kinds[v] = SPONTANEOUS
                k = recv_count.get(v, 0)
                histories[v].append(COLLISION if k >= 2 else SILENCE)
                wakeups.append((v, SPONTANEOUS))

            if trace is not None:
                trace.append(
                    RoundRecord(
                        global_round=r,
                        transmitters=dict(transmitters),
                        wakeups=wakeups,
                        terminated=list(terminating),
                    )
                )
            r += 1

        return ExecutionResult(
            histories=histories,
            wake_rounds=wake_rounds,
            wake_kinds=wake_kinds,
            done_local=done_local,
            rounds_elapsed=r,
            trace=trace,
        )


def simulate(
    network,
    factory: ProgramFactory,
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`RadioSimulator`."""
    return RadioSimulator(
        network, factory, max_rounds=max_rounds, record_trace=record_trace
    ).run()
