"""Fault injection: jamming adversaries for the radio channel.

The paper's model is failure-free; its protocols are exactly as brittle
as that assumption. This module quantifies the brittleness: a *jammer*
corrupts reception at chosen (global round, node) pairs — a jammed
listener hears collision noise regardless of what was transmitted (the
standard radio-jamming abstraction: the adversary keys the channel, and
with collision detection that is indistinguishable from a real
collision). Transmitters are unaffected (they hear nothing anyway), and
jamming noise does not wake sleeping nodes (noise is not a message).

Jamming is executed by the shared backend core
(:mod:`repro.radio.backends`): the jam schedule rides on the
:class:`~repro.radio.backends.base.SimulationSpec` and both backends
apply identical semantics. The schedules built by :func:`jam_pairs` and
:func:`jam_rounds` are *explicit* — they know their jammed rounds — so
the event-driven ``fast`` backend can treat each jammed round as an
event and still skip everything in between; an opaque callable schedule
forces the ``reference`` loop.

Uses include the robustness experiments in the test suite: the canonical
DRIP survives jamming confined to provably-silent rounds (the trailing σ
listen rounds of each phase) but is derailed by a single jammed round
inside a transmission block — symmetry breaking in this model hangs on
every bit of the history.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set, Tuple

from .backends import SimulationSpec, resolve_backend
from .events import ExecutionResult
from .protocol import ProgramFactory
from .simulator import (
    DEFAULT_MAX_ROUNDS,
    ProtocolViolation,  # noqa: F401  (re-exported for compatibility)
    SimulationTimeout,  # noqa: F401  (re-exported for compatibility)
)

#: A jam schedule decides whether reception at ``node`` in ``global_round``
#: is jammed. Explicit schedules (sets of pairs / rounds) and opaque
#: callables are both accepted.
JamSchedule = Callable[[int, object], bool]


class ExplicitJamSchedule:
    """A jam schedule with a known, finite set of jammed rounds.

    Callable like any :data:`JamSchedule`; additionally exposes
    :meth:`event_rounds`, which lets the fast backend schedule each
    jammed round as an execution event. The invariant callers must keep:
    ``fn(r, v)`` is False for every ``r`` outside ``rounds``.
    """

    __slots__ = ("_fn", "_rounds")

    def __init__(
        self, fn: JamSchedule, rounds: Iterable[int]
    ) -> None:
        self._fn = fn
        self._rounds: Tuple[int, ...] = tuple(sorted(set(rounds)))

    def __call__(self, global_round: int, node: object) -> bool:
        """True when reception at ``node`` in ``global_round`` is jammed."""
        return self._fn(global_round, node)

    def event_rounds(self) -> Tuple[int, ...]:
        """Sorted global rounds in which jamming may occur."""
        return self._rounds


def jam_pairs(pairs: Iterable[Tuple[int, object]]) -> ExplicitJamSchedule:
    """Schedule from explicit ``(global_round, node)`` pairs."""
    table: Set[Tuple[int, object]] = set(pairs)
    return ExplicitJamSchedule(
        lambda r, v: (r, v) in table, (r for r, _ in table)
    )


def jam_rounds(rounds: Iterable[int]) -> ExplicitJamSchedule:
    """Schedule jamming every node in the given global rounds."""
    table = set(rounds)
    return ExplicitJamSchedule(lambda r, v: r in table, table)


def jam_nothing() -> ExplicitJamSchedule:
    """The failure-free schedule (reference)."""
    return ExplicitJamSchedule(lambda r, v: False, ())


class JammedRadioSimulator:
    """The radio simulator plus an adversarial jammer.

    Identical semantics to :class:`repro.radio.simulator.RadioSimulator`
    except that a jammed, listening, awake node records ``(∗)`` no matter
    what was actually on the air. With :func:`jam_nothing` the execution
    is identical to the un-jammed simulator (asserted in tests).
    """

    def __init__(
        self,
        network,
        factory: ProgramFactory,
        *,
        jammer: Optional[JamSchedule] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        record_trace: bool = False,
        backend: str = "auto",
    ) -> None:
        self._spec = SimulationSpec(
            network,
            factory,
            jammer=jammer if jammer is not None else jam_nothing(),
            max_rounds=max_rounds,
            record_trace=record_trace,
        )
        self._backend = backend

    @property
    def effective_jams(self) -> List[Tuple[int, object]]:
        """(round, node) pairs where jamming actually changed an entry."""
        return self._spec.effective_jams

    def run(self) -> ExecutionResult:
        """Execute until every node terminates (jamming applied)."""
        return resolve_backend(self._backend, self._spec).run(self._spec)


def jammed_simulate(
    network,
    factory: ProgramFactory,
    *,
    jammer: Optional[JamSchedule] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    backend: str = "auto",
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`JammedRadioSimulator`."""
    return JammedRadioSimulator(
        network,
        factory,
        jammer=jammer,
        max_rounds=max_rounds,
        record_trace=record_trace,
        backend=backend,
    ).run()
