"""Fault injection: jamming adversaries for the radio channel.

The paper's model is failure-free; its protocols are exactly as brittle
as that assumption. This module quantifies the brittleness: a *jammer*
corrupts reception at chosen (global round, node) pairs — a jammed
listener hears collision noise regardless of what was transmitted (the
standard radio-jamming abstraction: the adversary keys the channel, and
with collision detection that is indistinguishable from a real
collision). Transmitters are unaffected (they hear nothing anyway), and
jamming noise does not wake sleeping nodes (noise is not a message).

Jamming is executed by the shared backend core
(:mod:`repro.radio.backends`): the jam schedule rides on the
:class:`~repro.radio.backends.base.SimulationSpec` and both backends
apply identical semantics. The schedules built by :func:`jam_pairs` and
:func:`jam_rounds` are *explicit* — they know their jammed rounds — so
the event-driven ``fast`` backend can treat each jammed round as an
event and still skip everything in between; an opaque callable schedule
forces the ``reference`` loop.

Uses include the robustness experiments in the test suite: the canonical
DRIP survives jamming confined to provably-silent rounds (the trailing σ
listen rounds of each phase) but is derailed by a single jammed round
inside a transmission block — symmetry breaking in this model hangs on
every bit of the history.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .backends import SimulationSpec, resolve_backend
from .events import ExecutionResult
from .protocol import ProgramFactory
from .simulator import (
    DEFAULT_MAX_ROUNDS,
    ProtocolViolation,  # noqa: F401  (re-exported for compatibility)
    SimulationTimeout,  # noqa: F401  (re-exported for compatibility)
)

#: A jam schedule decides whether reception at ``node`` in ``global_round``
#: is jammed. Explicit schedules (sets of pairs / rounds) and opaque
#: callables are both accepted.
JamSchedule = Callable[[int, object], bool]


class ExplicitJamSchedule:
    """A jam schedule with a known, finite set of jammed rounds.

    Callable like any :data:`JamSchedule`; additionally exposes
    :meth:`event_rounds`, which lets the fast backend schedule each
    jammed round as an execution event. The invariant callers must keep:
    ``fn(r, v)`` is False for every ``r`` outside ``rounds``.

    Schedules built by :func:`jam_pairs` / :func:`jam_rounds` /
    :func:`jam_nothing` carry a JSON-able self-description and
    round-trip through :meth:`to_spec` / :meth:`from_spec`, so they can
    live in campaign manifests and engine cache keys instead of being
    opaque callables. A schedule constructed from a bare callable has no
    spec and :meth:`to_spec` raises ``TypeError``.
    """

    __slots__ = ("_fn", "_rounds", "_spec")

    def __init__(
        self,
        fn: JamSchedule,
        rounds: Iterable[int],
        spec: Optional[Dict] = None,
    ) -> None:
        self._fn = fn
        self._rounds: Tuple[int, ...] = tuple(sorted(set(rounds)))
        self._spec = spec

    def __call__(self, global_round: int, node: object) -> bool:
        """True when reception at ``node`` in ``global_round`` is jammed."""
        return self._fn(global_round, node)

    def event_rounds(self) -> Tuple[int, ...]:
        """Sorted global rounds in which jamming may occur."""
        return self._rounds

    def to_spec(self) -> Dict:
        """JSON-able description this schedule can be rebuilt from.

        The inverse is :meth:`from_spec`; the round-trip reproduces the
        exact jam decisions. Only schedules built by the module
        constructors carry a spec — an ad-hoc callable wrapped in an
        ``ExplicitJamSchedule`` raises ``TypeError`` (it cannot cross a
        manifest/process boundary).
        """
        if self._spec is None:
            raise TypeError(
                "this ExplicitJamSchedule wraps an opaque callable and "
                "has no spec; build it via jam_pairs / jam_rounds / "
                "jam_nothing (or a repro.adversary strategy) to make it "
                "serializable"
            )
        return dict(self._spec)

    @staticmethod
    def from_spec(spec: Dict) -> "ExplicitJamSchedule":
        """Rebuild a schedule from a :meth:`to_spec` dict.

        Handles the three base kinds defined here (``jam_pairs``,
        ``jam_rounds``, ``jam_nothing``). The adversary-zoo kinds are
        registered in :mod:`repro.adversary`, whose
        :func:`~repro.adversary.adversary_from_spec` dispatches over
        every known kind (including these three).
        """
        kind = spec.get("kind")
        if kind == "jam_pairs":
            return jam_pairs((r, v) for r, v in spec["pairs"])
        if kind == "jam_rounds":
            return jam_rounds(spec["rounds"])
        if kind == "jam_nothing":
            return jam_nothing()
        raise KeyError(
            f"unknown jam-schedule kind {kind!r}; the adversary-zoo kinds "
            "are rebuilt via repro.adversary.adversary_from_spec"
        )


def jam_pairs(pairs: Iterable[Tuple[int, object]]) -> ExplicitJamSchedule:
    """Schedule from explicit ``(global_round, node)`` pairs.

    Serializable when every node id is a JSON scalar (int or str).
    """
    table: Set[Tuple[int, object]] = set(pairs)
    spec = {
        "kind": "jam_pairs",
        "pairs": sorted([r, v] for r, v in table),
    }
    return ExplicitJamSchedule(
        lambda r, v: (r, v) in table, (r for r, _ in table), spec
    )


def jam_rounds(rounds: Iterable[int]) -> ExplicitJamSchedule:
    """Schedule jamming every node in the given global rounds."""
    table = set(rounds)
    spec = {"kind": "jam_rounds", "rounds": sorted(table)}
    return ExplicitJamSchedule(lambda r, v: r in table, table, spec)


def jam_nothing() -> ExplicitJamSchedule:
    """The failure-free schedule (reference)."""
    return ExplicitJamSchedule(lambda r, v: False, (), {"kind": "jam_nothing"})


class JammedRadioSimulator:
    """The radio simulator plus an adversarial jammer.

    Identical semantics to :class:`repro.radio.simulator.RadioSimulator`
    except that a jammed, listening, awake node records ``(∗)`` no matter
    what was actually on the air. With :func:`jam_nothing` the execution
    is identical to the un-jammed simulator (asserted in tests).
    """

    def __init__(
        self,
        network,
        factory: ProgramFactory,
        *,
        jammer: Optional[JamSchedule] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        record_trace: bool = False,
        backend: str = "auto",
    ) -> None:
        self._spec = SimulationSpec(
            network,
            factory,
            jammer=jammer if jammer is not None else jam_nothing(),
            max_rounds=max_rounds,
            record_trace=record_trace,
        )
        self._backend = backend

    @property
    def effective_jams(self) -> List[Tuple[int, object]]:
        """(round, node) pairs where jamming actually changed an entry."""
        return self._spec.effective_jams

    def run(self) -> ExecutionResult:
        """Execute until every node terminates (jamming applied)."""
        return resolve_backend(self._backend, self._spec).run(self._spec)


def jammed_simulate(
    network,
    factory: ProgramFactory,
    *,
    jammer: Optional[JamSchedule] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    backend: str = "auto",
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`JammedRadioSimulator`."""
    return JammedRadioSimulator(
        network,
        factory,
        jammer=jammer,
        max_rounds=max_rounds,
        record_trace=record_trace,
        backend=backend,
    ).run()
