"""Fault injection: jamming adversaries for the radio channel.

The paper's model is failure-free; its protocols are exactly as brittle
as that assumption. This module quantifies the brittleness: a *jammer*
corrupts reception at chosen (global round, node) pairs — a jammed
listener hears collision noise regardless of what was transmitted (the
standard radio-jamming abstraction: the adversary keys the channel, and
with collision detection that is indistinguishable from a real
collision). Transmitters are unaffected (they hear nothing anyway), and
jamming noise does not wake sleeping nodes (noise is not a message).

Uses include the robustness experiments in the test suite: the canonical
DRIP survives jamming confined to provably-silent rounds (the trailing σ
listen rounds of each phase) but is derailed by a single jammed round
inside a transmission block — symmetry breaking in this model hangs on
every bit of the history.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .events import FORCED, SPONTANEOUS, ExecutionResult, RoundRecord
from .history import History
from .model import COLLISION, LISTEN, SILENCE, TERMINATE, Message, Transmit
from .protocol import ProgramFactory
from .simulator import (
    DEFAULT_MAX_ROUNDS,
    ProtocolViolation,
    SimulationTimeout,
)

#: A jam schedule decides whether reception at ``node`` in ``global_round``
#: is jammed. Sets of pairs and callables are both accepted.
JamSchedule = Callable[[int, object], bool]


def jam_pairs(pairs: Iterable[Tuple[int, object]]) -> JamSchedule:
    """Schedule from explicit ``(global_round, node)`` pairs."""
    table: Set[Tuple[int, object]] = set(pairs)
    return lambda r, v: (r, v) in table


def jam_rounds(rounds: Iterable[int]) -> JamSchedule:
    """Schedule jamming every node in the given global rounds."""
    table = set(rounds)
    return lambda r, v: r in table


def jam_nothing() -> JamSchedule:
    """The failure-free schedule (reference)."""
    return lambda r, v: False


class JammedRadioSimulator:
    """The reference radio simulator plus an adversarial jammer.

    Identical semantics to :class:`repro.radio.simulator.RadioSimulator`
    except that a jammed, listening, awake node records ``(∗)`` no matter
    what was actually on the air. With :func:`jam_nothing` the execution
    is identical to the reference simulator (asserted in tests).
    """

    def __init__(
        self,
        network,
        factory: ProgramFactory,
        *,
        jammer: Optional[JamSchedule] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        record_trace: bool = False,
    ) -> None:
        self._nodes: List[object] = sorted(network.nodes)
        if not self._nodes:
            raise ValueError("network has no nodes")
        self._adj: Dict[object, Tuple[object, ...]] = {
            v: tuple(sorted(network.neighbors(v))) for v in self._nodes
        }
        self._tags: Dict[object, int] = {v: network.tag(v) for v in self._nodes}
        for v, t in self._tags.items():
            if t < 0:
                raise ValueError(f"negative wakeup tag at node {v!r}")
        self._programs = {v: factory(v) for v in self._nodes}
        self._jammer = jammer if jammer is not None else jam_nothing()
        self._max_rounds = max_rounds
        self._record_trace = record_trace
        #: (round, node) pairs where jamming actually changed an entry.
        self.effective_jams: List[Tuple[int, object]] = []

    def run(self) -> ExecutionResult:
        """Execute until every node terminates (jamming applied)."""
        nodes = self._nodes
        adj = self._adj
        tags = self._tags
        programs = self._programs
        jammed = self._jammer

        ASLEEP, AWAKE, DONE = 0, 1, 2
        state: Dict[object, int] = {v: ASLEEP for v in nodes}
        histories: Dict[object, History] = {v: History() for v in nodes}
        wake_rounds: Dict[object, int] = {}
        wake_kinds: Dict[object, str] = {}
        done_local: Dict[object, int] = {}
        trace: Optional[List[RoundRecord]] = [] if self._record_trace else None

        remaining = len(nodes)
        by_tag = sorted(nodes, key=lambda v: (tags[v], v))
        next_spont = 0

        r = 0
        while remaining:
            if r > self._max_rounds:
                raise SimulationTimeout(
                    f"jammed simulation exceeded {self._max_rounds} rounds"
                )

            transmitters: Dict[object, object] = {}
            terminating: List[object] = []
            for v in nodes:
                if state[v] != AWAKE or wake_rounds[v] == r:
                    continue
                action = programs[v].decide(histories[v])
                if action is LISTEN:
                    continue
                if action is TERMINATE:
                    terminating.append(v)
                elif isinstance(action, Transmit):
                    transmitters[v] = action.message
                else:
                    raise ProtocolViolation(
                        f"node {v!r} returned invalid action {action!r}"
                    )

            recv_count: Dict[object, int] = {}
            recv_msg: Dict[object, object] = {}
            for t, msg in transmitters.items():
                for u in adj[t]:
                    recv_count[u] = recv_count.get(u, 0) + 1
                    recv_msg[u] = msg

            for v in nodes:
                if state[v] != AWAKE or wake_rounds[v] == r:
                    continue
                if v in transmitters:
                    entry = SILENCE  # transmitters are immune to jamming
                elif jammed(r, v):
                    entry = COLLISION
                    if recv_count.get(v, 0) < 2:
                        # a real collision would have sounded the same;
                        # only silence/message rounds are actually altered
                        self.effective_jams.append((r, v))
                else:
                    k = recv_count.get(v, 0)
                    if k == 0:
                        entry = SILENCE
                    elif k == 1:
                        entry = Message(recv_msg[v])
                    else:
                        entry = COLLISION
                histories[v].append(entry)

            for v in terminating:
                state[v] = DONE
                done_local[v] = len(histories[v]) - 1
                remaining -= 1

            wakeups: List[Tuple[object, str]] = []
            for v, k in recv_count.items():
                # jamming suppresses the message, so a jammed sleeping
                # node is NOT woken (noise is not a message)
                if state[v] == ASLEEP and k == 1 and not jammed(r, v):
                    state[v] = AWAKE
                    wake_rounds[v] = r
                    wake_kinds[v] = FORCED
                    histories[v].append(Message(recv_msg[v]))
                    wakeups.append((v, FORCED))
            while next_spont < len(by_tag) and tags[by_tag[next_spont]] <= r:
                v = by_tag[next_spont]
                next_spont += 1
                if state[v] != ASLEEP:
                    continue
                state[v] = AWAKE
                wake_rounds[v] = r
                wake_kinds[v] = SPONTANEOUS
                k = recv_count.get(v, 0)
                noisy = k >= 2 or jammed(r, v)
                histories[v].append(COLLISION if noisy else SILENCE)
                wakeups.append((v, SPONTANEOUS))

            if trace is not None:
                trace.append(
                    RoundRecord(
                        global_round=r,
                        transmitters=dict(transmitters),
                        wakeups=wakeups,
                        terminated=list(terminating),
                    )
                )
            r += 1

        return ExecutionResult(
            histories=histories,
            wake_rounds=wake_rounds,
            wake_kinds=wake_kinds,
            done_local=done_local,
            rounds_elapsed=r,
            trace=trace,
        )


def jammed_simulate(
    network,
    factory: ProgramFactory,
    *,
    jammer: Optional[JamSchedule] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`JammedRadioSimulator`."""
    return JammedRadioSimulator(
        network,
        factory,
        jammer=jammer,
        max_rounds=max_rounds,
        record_trace=record_trace,
    ).run()
