"""Primitive values of the radio model: history entries and node actions.

The paper (Section 2.2) defines, for each local round ``i``, the history
entry ``H_v[i]`` of node ``v`` as one of

* ``(∅)`` — ``v`` transmitted, or listened and heard nothing (silence),
* ``(M)`` — ``v`` listened and received message ``M`` (exactly one
  neighbour transmitted), or ``i == 0`` and ``v`` was woken up by ``M``,
* ``(∗)`` — ``v`` listened and a collision occurred (two or more
  neighbours transmitted); the noise is distinguishable from any message
  and from silence.

Actions available to a node in each local round ``i >= 1`` are ``listen``,
``transmit(M)`` and ``terminate``.

These are deliberately tiny immutable values: histories of long executions
contain millions of them, and the simulator compares and hashes them in its
inner loop.
"""

from __future__ import annotations

from typing import Union


class _Sentinel:
    """A unique, self-describing constant (used for ∅ and ∗ entries)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self._name

    def __reduce__(self):  # keep identity through pickling
        return (_lookup_sentinel, (self._name,))


#: History entry ``(∅)``: silence (or the entry of a transmitting node).
SILENCE = _Sentinel("SILENCE")

#: History entry ``(∗)``: collision noise.
COLLISION = _Sentinel("COLLISION")


def _lookup_sentinel(name: str) -> _Sentinel:
    return {"SILENCE": SILENCE, "COLLISION": COLLISION}[name]


class Message:
    """History entry ``(M)``: a received message with ``payload``.

    Payloads are arbitrary hashable values; the paper's canonical DRIP only
    ever transmits the string ``"1"``, but baselines (labeled and randomized
    protocols) use richer payloads.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: object) -> None:
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Message({self.payload!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Message) and other.payload == self.payload

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("Message", self.payload))


#: Type alias for anything that may appear in a node history.
HistoryEntry = Union[_Sentinel, Message]


class _ActionSentinel(_Sentinel):
    __slots__ = ()

    def __reduce__(self):
        return (_lookup_action, (self._name,))


#: Action: stay silent and listen this round.
LISTEN = _ActionSentinel("LISTEN")

#: Action: terminate permanently (the node stops participating).
TERMINATE = _ActionSentinel("TERMINATE")


def _lookup_action(name: str) -> _ActionSentinel:
    return {"LISTEN": LISTEN, "TERMINATE": TERMINATE}[name]


class Transmit:
    """Action: transmit ``message`` to all neighbours this round."""

    __slots__ = ("message",)

    def __init__(self, message: object = "1") -> None:
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Transmit({self.message!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Transmit) and other.message == self.message

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("Transmit", self.message))


#: Type alias for anything a DRIP may return.
Action = Union[_ActionSentinel, Transmit]


def is_transmit(action: Action) -> bool:
    """Return True when ``action`` is a transmission."""
    return isinstance(action, Transmit)


def entry_symbol(entry: HistoryEntry) -> str:
    """Short printable symbol for a history entry (used in traces/tables)."""
    if entry is SILENCE:
        return "."
    if entry is COLLISION:
        return "*"
    if isinstance(entry, Message):
        return f"<{entry.payload}>"
    raise TypeError(f"not a history entry: {entry!r}")
