"""Radio-network substrate: model, histories, protocols, simulator.

This subpackage contains everything below the paper's algorithmic layer:
the synchronous radio communication model with collision detection
(:mod:`~repro.radio.model`), sparse node histories
(:mod:`~repro.radio.history`), the DRIP protocol abstraction and the
Lemma 3.12 patient transformation (:mod:`~repro.radio.protocol`), the
round-based simulator (:mod:`~repro.radio.simulator`) and execution
records (:mod:`~repro.radio.events`).
"""

from .events import FORCED, SPONTANEOUS, ExecutionResult, RoundRecord
from .history import History, shifted_view_key
from .model import (
    COLLISION,
    LISTEN,
    SILENCE,
    TERMINATE,
    Action,
    HistoryEntry,
    Message,
    Transmit,
    entry_symbol,
    is_transmit,
)
from .protocol import (
    DRIP,
    AlwaysListenDRIP,
    FunctionDRIP,
    LeaderElectionAlgorithm,
    PatientWrapper,
    ProgramFactory,
    ScheduleDRIP,
    anonymous_factory,
    make_patient,
    patient_span_of,
)
from .simulator import (
    DEFAULT_MAX_ROUNDS,
    ProtocolViolation,
    RadioSimulator,
    SimulationTimeout,
    simulate,
)

from .faults import (
    JammedRadioSimulator,
    jam_nothing,
    jam_pairs,
    jam_rounds,
    jammed_simulate,
)

__all__ = [
    "Action",
    "AlwaysListenDRIP",
    "COLLISION",
    "DEFAULT_MAX_ROUNDS",
    "DRIP",
    "ExecutionResult",
    "FORCED",
    "FunctionDRIP",
    "History",
    "HistoryEntry",
    "JammedRadioSimulator",
    "LISTEN",
    "LeaderElectionAlgorithm",
    "Message",
    "PatientWrapper",
    "ProgramFactory",
    "ProtocolViolation",
    "RadioSimulator",
    "RoundRecord",
    "SILENCE",
    "SPONTANEOUS",
    "ScheduleDRIP",
    "SimulationTimeout",
    "TERMINATE",
    "Transmit",
    "anonymous_factory",
    "entry_symbol",
    "is_transmit",
    "jam_nothing",
    "jam_pairs",
    "jam_rounds",
    "jammed_simulate",
    "make_patient",
    "patient_span_of",
    "shifted_view_key",
    "simulate",
]
