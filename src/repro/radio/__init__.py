"""Radio-network substrate: model, histories, protocols, simulator.

This subpackage contains everything below the paper's algorithmic layer:
the synchronous radio communication model with collision detection
(:mod:`~repro.radio.model`), sparse node histories
(:mod:`~repro.radio.history`), the DRIP protocol abstraction and the
Lemma 3.12 patient transformation (:mod:`~repro.radio.protocol`), the
pluggable simulation backends (:mod:`~repro.radio.backends`: the
per-round ``reference`` oracle and the event-driven ``fast`` executor),
the simulator facade (:mod:`~repro.radio.simulator`), fault injection
(:mod:`~repro.radio.faults`) and execution records
(:mod:`~repro.radio.events`).
"""

from .events import FORCED, SPONTANEOUS, ExecutionResult, RoundRecord
from .history import History, shifted_view_key
from .model import (
    COLLISION,
    LISTEN,
    SILENCE,
    TERMINATE,
    Action,
    HistoryEntry,
    Message,
    Transmit,
    entry_symbol,
    is_transmit,
)
from .protocol import (
    DRIP,
    AlwaysListenDRIP,
    Commitment,
    FunctionDRIP,
    LeaderElectionAlgorithm,
    PatientWrapper,
    ProgramFactory,
    ScheduleDRIP,
    ScheduleOblivious,
    anonymous_factory,
    make_patient,
    patient_span_of,
)
from .backends import (
    BACKEND_NAMES,
    BackendStats,
    BackendUnsupported,
    FastBackend,
    ReferenceBackend,
    SimulationSpec,
    resolve_backend,
)
from .simulator import (
    DEFAULT_MAX_ROUNDS,
    ProtocolViolation,
    RadioSimulator,
    SimulationTimeout,
    simulate,
)

from .faults import (
    ExplicitJamSchedule,
    JammedRadioSimulator,
    jam_nothing,
    jam_pairs,
    jam_rounds,
    jammed_simulate,
)

__all__ = [
    "Action",
    "AlwaysListenDRIP",
    "BACKEND_NAMES",
    "BackendStats",
    "BackendUnsupported",
    "COLLISION",
    "Commitment",
    "DEFAULT_MAX_ROUNDS",
    "DRIP",
    "ExecutionResult",
    "ExplicitJamSchedule",
    "FORCED",
    "FastBackend",
    "FunctionDRIP",
    "History",
    "HistoryEntry",
    "JammedRadioSimulator",
    "LISTEN",
    "LeaderElectionAlgorithm",
    "Message",
    "PatientWrapper",
    "ProgramFactory",
    "ProtocolViolation",
    "RadioSimulator",
    "ReferenceBackend",
    "RoundRecord",
    "SILENCE",
    "SPONTANEOUS",
    "ScheduleDRIP",
    "ScheduleOblivious",
    "SimulationSpec",
    "SimulationTimeout",
    "TERMINATE",
    "Transmit",
    "anonymous_factory",
    "entry_symbol",
    "is_transmit",
    "jam_nothing",
    "jam_pairs",
    "jam_rounds",
    "jammed_simulate",
    "make_patient",
    "patient_span_of",
    "resolve_backend",
    "shifted_view_key",
    "simulate",
]
