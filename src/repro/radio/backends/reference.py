"""The reference backend: the paper-faithful per-round, per-node loop.

This is the oracle every other executor is measured against. It walks
every global round and consults every awake node's DRIP, implementing
the communication model of Section 1.1/2.1 exactly — generalized over
two orthogonal knobs that used to live in forked copies of this loop:

* ``spec.channel`` — ``None`` for the paper's collision-detection model,
  or a :class:`~repro.variants.channels.Channel` delegating what a
  listener records, what wakes a sleeper, and the wakeup-round entry;
* ``spec.jammer`` — ``None`` or a ``(round, node) -> bool`` schedule; a
  jammed, listening, awake node records ``(∗)`` no matter what was on
  the air, and jamming suppresses message-forced wakeups (noise is not
  a message).

With both knobs off this is byte-identical to the historical
``RadioSimulator`` loop; with a channel it reproduces the variant
simulator; with a jammer the fault-injection simulator. The three used
to be separate copies — they are now one loop with two branches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...obs.runtime import STATE as _OBS
from ...obs.runtime import registry as _registry
from ..events import FORCED, SPONTANEOUS, ExecutionResult, RoundRecord
from ..history import History
from ..model import COLLISION, LISTEN, SILENCE, TERMINATE, Message, Transmit
from .base import (
    ASLEEP,
    AWAKE,
    DONE,
    BackendStats,
    ProtocolViolation,
    SimulationBackend,
    SimulationSpec,
    budget_exceeded,
    jammed_listener_entries,
    jammed_spontaneous_entry,
    reset_adversary,
)


class ReferenceBackend(SimulationBackend):
    """Per-round, per-node execution of a :class:`SimulationSpec`.

    Supports every spec; O(global rounds × n) work.
    """

    name = "reference"

    def run(self, spec: SimulationSpec) -> ExecutionResult:
        """Execute until every node has terminated; return the result."""
        nodes = spec.nodes
        adj = spec.adj
        tags = spec.tags
        programs = spec.programs
        channel = spec.channel
        jammer = spec.jammer
        reset_adversary(jammer)
        # Adaptive adversaries observe the channel once per round, after
        # reception is computed and before any jam decision for that
        # round is consulted. Only this backend supports them.
        observe = getattr(jammer, "observe", None)

        state: Dict[object, int] = {v: ASLEEP for v in nodes}
        histories: Dict[object, History] = {v: History() for v in nodes}
        wake_rounds: Dict[object, int] = {}
        wake_kinds: Dict[object, str] = {}
        done_local: Dict[object, int] = {}
        trace: Optional[List[RoundRecord]] = [] if spec.record_trace else None
        decisions = 0

        remaining = len(nodes)  # nodes not yet DONE
        # Nodes sorted by tag let us wake spontaneously without a full scan.
        by_tag = sorted(nodes, key=lambda v: (tags[v], v))
        next_spont = 0  # index into by_tag of the next candidate wakeup

        r = 0
        while remaining:
            if r >= spec.max_rounds:
                awake = sum(1 for s in state.values() if s == AWAKE)
                done = len(nodes) - remaining
                raise budget_exceeded(
                    spec.max_rounds,
                    r,
                    awake=awake,
                    asleep=remaining - awake,
                    terminated=done,
                )

            # --- 1. collect decisions of awake nodes (local round >= 1) ---
            transmitters: Dict[object, object] = {}
            terminating: List[object] = []
            for v in nodes:
                if state[v] != AWAKE or wake_rounds[v] == r:
                    continue
                action = programs[v].decide(histories[v])
                decisions += 1
                if action is LISTEN:
                    continue
                if action is TERMINATE:
                    terminating.append(v)
                elif isinstance(action, Transmit):
                    transmitters[v] = action.message
                else:
                    raise ProtocolViolation(
                        f"node {v!r} returned invalid action {action!r} "
                        f"in local round {len(histories[v])}"
                    )

            # --- 2. compute what each node receives ---------------------
            recv_count: Dict[object, int] = {}
            recv_msg: Dict[object, object] = {}
            for t, msg in transmitters.items():
                for u in adj[t]:
                    recv_count[u] = recv_count.get(u, 0) + 1
                    recv_msg[u] = msg

            if observe is not None:
                observe(r, len(transmitters))

            # --- 3. record history entries for awake nodes --------------
            for v in nodes:
                if state[v] != AWAKE or wake_rounds[v] == r:
                    continue
                if v in transmitters:
                    entry = SILENCE  # transmitters are immune to jamming
                elif jammer is not None and jammer(r, v):
                    entry, honest = jammed_listener_entries(
                        channel, recv_count.get(v, 0), recv_msg.get(v)
                    )
                    if entry != honest:
                        # an entry the un-jammed round would not have had
                        spec.effective_jams.append((r, v))
                elif channel is None:
                    k = recv_count.get(v, 0)
                    if k == 0:
                        entry = SILENCE
                    elif k == 1:
                        entry = Message(recv_msg[v])
                    else:
                        entry = COLLISION
                else:
                    entry = channel.entry(recv_count.get(v, 0), recv_msg.get(v))
                histories[v].append(entry)

            # --- 4. terminations ----------------------------------------
            for v in terminating:
                state[v] = DONE
                done_local[v] = len(histories[v]) - 1  # the terminate round
                remaining -= 1

            # --- 5. wakeups (forced by message, else spontaneous at tag) -
            wakeups: List[Tuple[object, str]] = []
            for v, k in recv_count.items():
                if state[v] != ASLEEP:
                    continue
                wakes = k == 1 if channel is None else channel.wakes(k)
                if not wakes or (jammer is not None and jammer(r, v)):
                    # jamming suppresses the message, so a jammed sleeping
                    # node is NOT woken (noise is not a message)
                    continue
                state[v] = AWAKE
                wake_rounds[v] = r
                wake_kinds[v] = FORCED
                if channel is None:
                    histories[v].append(Message(recv_msg[v]))
                else:
                    histories[v].append(channel.wake_entry(k, recv_msg.get(v)))
                wakeups.append((v, FORCED))
            while next_spont < len(by_tag) and tags[by_tag[next_spont]] <= r:
                v = by_tag[next_spont]
                next_spont += 1
                if state[v] != ASLEEP:
                    continue  # woke up forced in this or an earlier round
                state[v] = AWAKE
                wake_rounds[v] = r
                wake_kinds[v] = SPONTANEOUS
                k = recv_count.get(v, 0)
                if jammer is not None and jammer(r, v):
                    entry = jammed_spontaneous_entry(channel, k)
                elif channel is None:
                    entry = COLLISION if k >= 2 else SILENCE
                else:
                    entry = channel.spontaneous_entry(k)
                histories[v].append(entry)
                wakeups.append((v, SPONTANEOUS))

            if trace is not None:
                trace.append(
                    RoundRecord(
                        global_round=r,
                        transmitters=dict(transmitters),
                        wakeups=wakeups,
                        terminated=list(terminating),
                    )
                )
            r += 1

        spec.stats = BackendStats(
            backend=self.name,
            rounds_elapsed=r,
            rounds_simulated=r,
            rounds_skipped=0,
            decisions=decisions,
        )
        if _OBS.enabled:  # per-run: guarded, one attribute check when off
            _registry.inc("backend.reference.runs")
            _registry.inc("backend.reference.rounds", r)
        return ExecutionResult(
            histories=histories,
            wake_rounds=wake_rounds,
            wake_kinds=wake_kinds,
            done_local=done_local,
            rounds_elapsed=r,
            trace=trace,
            backend_stats=spec.stats,
        )
