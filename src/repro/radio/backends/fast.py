"""The fast backend: event-driven, schedule-compiled execution.

Canonical-DRIP executions are Θ(n²σ) global rounds long and almost all
of those rounds are *provably* silent: each node transmits once per
phase, in a round fixed by its phase-start ``tBlock`` match, and listens
otherwise (Lemma 3.8). The reference loop still pays a ``decide`` call
per node per round. This backend instead *compiles* each node's
transmission timetable through the optional
:class:`~repro.radio.protocol.ScheduleOblivious` interface and executes
only the rounds in which something can happen:

* a committed transmission or termination falls due,
* a node's wakeup tag arrives,
* a commitment expires and the protocol must be re-queried
  (``RECHECK`` — e.g. a canonical phase boundary), or
* the jam schedule names the round.

Everything between consecutive events is a silent stretch: every awake
node records ``(∅)``, which the sparse
:class:`~repro.radio.history.History` stores as nothing but length — so
skipping costs a single integer update per node, batched at the end.
Nodes are re-indexed to dense ints ``0..n-1`` on entry so all per-node
state lives in flat lists instead of dicts keyed by arbitrary ids.

The contract is bit-for-bit :class:`~repro.radio.events.ExecutionResult`
equality with :class:`~repro.radio.backends.reference.ReferenceBackend`,
including trace records for the skipped rounds; committed actions are
re-validated against ``decide`` when they fall due, so a protocol that
breaks its commitment contract fails loudly instead of silently
diverging.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ...obs.runtime import STATE as _OBS
from ...obs.runtime import registry as _registry
from ..events import FORCED, SPONTANEOUS, ExecutionResult, RoundRecord
from ..history import History
from ..model import COLLISION, LISTEN, SILENCE, TERMINATE, Message, Transmit
from ..protocol import Commitment, ScheduleOblivious
from .base import (
    ASLEEP,
    AWAKE,
    DONE,
    BackendStats,
    BackendUnsupported,
    ProtocolViolation,
    SimulationBackend,
    SimulationSpec,
    budget_exceeded,
    adversary_is_adaptive,
    jammed_listener_entries,
    jammed_spontaneous_entry,
    reset_adversary,
    silent_neutral,
)

#: Heap event kinds (break round ties deterministically).
_EV_NODE, _EV_WAKE, _EV_JAM = 0, 1, 2


def _validated(program: ScheduleOblivious, history: History) -> Commitment:
    """Query a program's next commitment and check the progress rules."""
    com = program.next_commitment(history)
    i = len(history)
    if not isinstance(com, Commitment):
        raise ProtocolViolation(
            f"next_commitment returned {com!r}, not a Commitment"
        )
    if com.kind == Commitment.RECHECK:
        if com.round <= i:
            raise ProtocolViolation(
                f"RECHECK at local round {com.round} makes no progress "
                f"(history already has {i} round(s))"
            )
    elif com.kind in (Commitment.TRANSMIT, Commitment.TERMINATE):
        if com.round < i:
            raise ProtocolViolation(
                f"{com.kind} commitment for past local round {com.round} "
                f"(history already has {i} round(s))"
            )
    else:
        raise ProtocolViolation(f"unknown commitment kind {com.kind!r}")
    return com


class FastBackend(SimulationBackend):
    """Event-driven execution of a :class:`SimulationSpec`.

    Requires every program to implement
    :class:`~repro.radio.protocol.ScheduleOblivious`, a silent-neutral
    channel, and a jam schedule that exposes its rounds (see
    :meth:`why_unsupported`). Work is O(events), not O(rounds × n).
    """

    name = "fast"

    @staticmethod
    def why_unsupported(spec: SimulationSpec) -> Optional[str]:
        """Reason this spec cannot run event-driven, or None if it can."""
        for v, p in spec.programs.items():
            if not isinstance(p, ScheduleOblivious):
                return (
                    f"program of node {v!r} ({type(p).__name__}) does not "
                    "implement ScheduleOblivious"
                )
        if not silent_neutral(spec.channel):
            return (
                f"channel {spec.channel!r} is not silent-neutral "
                "(transmission-free rounds are observable)"
            )
        if adversary_is_adaptive(spec.jammer):
            return (
                "jam schedule is adaptive (exposes observe()); it must "
                "see every round's channel feedback, which the "
                "event-driven loop skips"
            )
        if spec.jammer is not None and not hasattr(spec.jammer, "event_rounds"):
            return (
                "jam schedule does not expose event_rounds(); only "
                "explicit schedules (jam_pairs / jam_rounds) can be "
                "executed event-driven"
            )
        return None

    # ------------------------------------------------------------------
    def run(self, spec: SimulationSpec) -> ExecutionResult:
        """Execute until every node has terminated; return the result."""
        reason = self.why_unsupported(spec)
        if reason is not None:
            raise BackendUnsupported(f"fast backend: {reason}")

        nodes = spec.nodes
        n = len(nodes)
        index = {v: i for i, v in enumerate(nodes)}
        # Dense re-index: node ids are sorted, so the int order matches
        # the reference backend's node iteration order exactly.
        adj: List[Tuple[int, ...]] = [
            tuple(index[w] for w in spec.adj[v]) for v in nodes
        ]
        tags = [spec.tags[v] for v in nodes]
        programs = [spec.programs[v] for v in nodes]
        channel = spec.channel
        jammer = spec.jammer
        reset_adversary(jammer)

        state = [ASLEEP] * n
        wake_round = [-1] * n
        wake_kind: List[Optional[str]] = [None] * n
        done_local = [-1] * n
        histories = [History() for _ in range(n)]
        pending: List[Optional[Commitment]] = [None] * n

        heap: List[Tuple[int, int, int]] = [
            (tags[i], _EV_WAKE, i) for i in range(n)
        ]
        if jammer is not None:
            heap.extend(
                (rr, _EV_JAM, -1) for rr in jammer.event_rounds() if rr >= 0
            )
        heapq.heapify(heap)

        remaining = n
        trace: Optional[List[RoundRecord]] = [] if spec.record_trace else None
        last_round = -1
        sim_rounds = 0
        decisions = 0
        max_rounds = spec.max_rounds

        def counts() -> Tuple[int, int, int]:
            awake = sum(1 for s in state if s == AWAKE)
            done = sum(1 for s in state if s == DONE)
            return awake, n - awake - done, done

        while remaining:
            if not heap:
                # No future event can change any state: the reference
                # loop would idle through silence to the budget.
                awake, asleep, done = counts()
                raise budget_exceeded(
                    max_rounds,
                    max_rounds,
                    awake=awake,
                    asleep=asleep,
                    terminated=done,
                )
            r = heap[0][0]
            if r >= max_rounds:
                # State is frozen between events, so the counts here are
                # exactly what the reference loop sees at round
                # ``max_rounds``.
                awake, asleep, done = counts()
                raise budget_exceeded(
                    max_rounds,
                    max_rounds,
                    awake=awake,
                    asleep=asleep,
                    terminated=done,
                )

            due: List[int] = []
            wake_due: List[int] = []
            jam_round = False
            while heap and heap[0][0] == r:
                _, kind, i = heapq.heappop(heap)
                if kind == _EV_NODE:
                    due.append(i)
                elif kind == _EV_WAKE:
                    if state[i] == ASLEEP:
                        wake_due.append(i)
                else:
                    jam_round = True

            if trace is not None:
                for q in range(last_round + 1, r):
                    trace.append(RoundRecord(global_round=q))

            # --- 1. decisions of nodes whose commitment falls due -------
            transmitters: Dict[int, object] = {}
            terminating: List[int] = []
            for i in sorted(due):
                if state[i] != AWAKE:
                    continue
                local = r - wake_round[i]
                histories[i].extend_silent(local)
                com = pending[i]
                if com.kind == Commitment.RECHECK:
                    com = _validated(programs[i], histories[i])
                    pending[i] = com
                    if com.kind == Commitment.RECHECK or com.round > local:
                        heapq.heappush(
                            heap, (wake_round[i] + com.round, _EV_NODE, i)
                        )
                        continue
                # Commitment due now — decide() stays the ground truth.
                action = programs[i].decide(histories[i])
                decisions += 1
                if action is TERMINATE:
                    terminating.append(i)
                elif isinstance(action, Transmit):
                    transmitters[i] = action.message
                elif action is LISTEN:
                    raise ProtocolViolation(
                        f"node {nodes[i]!r} committed to {com.kind} in local "
                        f"round {local} but decided to listen — it broke the "
                        "ScheduleOblivious contract"
                    )
                else:
                    raise ProtocolViolation(
                        f"node {nodes[i]!r} returned invalid action "
                        f"{action!r} in local round {local}"
                    )

            # --- 2. reception ------------------------------------------
            recv_count: Dict[int, int] = {}
            recv_msg: Dict[int, object] = {}
            for ti, msg in transmitters.items():
                for u in adj[ti]:
                    recv_count[u] = recv_count.get(u, 0) + 1
                    recv_msg[u] = msg

            # --- 3. non-silent entries of awake listeners ---------------
            # On a jammed round every awake node may be affected;
            # otherwise only nodes with a transmitting neighbour can
            # record anything (silent-neutrality of the channel).
            candidates = range(n) if jam_round else recv_count
            for i in candidates:
                if state[i] != AWAKE or i in transmitters:
                    continue
                local = r - wake_round[i]
                if jam_round and jammer(r, nodes[i]):
                    entry, honest = jammed_listener_entries(
                        channel, recv_count.get(i, 0), recv_msg.get(i)
                    )
                    if entry != honest:
                        spec.effective_jams.append((r, nodes[i]))
                elif channel is None:
                    k = recv_count.get(i, 0)
                    if k == 0:
                        entry = SILENCE
                    elif k == 1:
                        entry = Message(recv_msg[i])
                    else:
                        entry = COLLISION
                else:
                    entry = channel.entry(recv_count.get(i, 0), recv_msg.get(i))
                histories[i].set_entry(local, entry)

            # --- 4. terminations ----------------------------------------
            for i in terminating:
                state[i] = DONE
                local = r - wake_round[i]
                histories[i].extend_silent(local + 1)  # H[0..done] inclusive
                done_local[i] = local
                pending[i] = None
                remaining -= 1

            # --- 5. wakeups (forced by message, else spontaneous at tag) -
            wakeups: List[Tuple[object, str]] = []
            new_awake: List[int] = []
            for i, k in recv_count.items():
                if state[i] != ASLEEP:
                    continue
                wakes = k == 1 if channel is None else channel.wakes(k)
                if not wakes or (jam_round and jammer(r, nodes[i])):
                    continue
                state[i] = AWAKE
                wake_round[i] = r
                wake_kind[i] = FORCED
                if channel is None:
                    entry = Message(recv_msg[i])
                else:
                    entry = channel.wake_entry(k, recv_msg.get(i))
                histories[i].set_entry(0, entry)
                wakeups.append((nodes[i], FORCED))
                new_awake.append(i)
            for i in sorted(wake_due):
                if state[i] != ASLEEP:
                    continue  # woken forced earlier in this very round
                state[i] = AWAKE
                wake_round[i] = r
                wake_kind[i] = SPONTANEOUS
                k = recv_count.get(i, 0)
                if jam_round and jammer(r, nodes[i]):
                    entry = jammed_spontaneous_entry(channel, k)
                elif channel is None:
                    entry = COLLISION if k >= 2 else SILENCE
                else:
                    entry = channel.spontaneous_entry(k)
                histories[i].set_entry(0, entry)
                wakeups.append((nodes[i], SPONTANEOUS))
                new_awake.append(i)

            # --- 6. refresh commitments of nodes that acted or woke ------
            for i in sorted(new_awake + list(transmitters)):
                histories[i].extend_silent(r + 1 - wake_round[i])
                com = _validated(programs[i], histories[i])
                pending[i] = com
                heapq.heappush(heap, (wake_round[i] + com.round, _EV_NODE, i))

            if trace is not None:
                trace.append(
                    RoundRecord(
                        global_round=r,
                        transmitters={
                            nodes[i]: m for i, m in transmitters.items()
                        },
                        wakeups=wakeups,
                        terminated=[nodes[i] for i in terminating],
                    )
                )
            last_round = r
            sim_rounds += 1

        # --- batch-materialize the result -------------------------------
        rounds_elapsed = last_round + 1
        result_histories: Dict[object, History] = {}
        for i, v in enumerate(nodes):
            histories[i].extend_silent(done_local[i] + 1)
            result_histories[v] = histories[i]
        spec.stats = BackendStats(
            backend=self.name,
            rounds_elapsed=rounds_elapsed,
            rounds_simulated=sim_rounds,
            rounds_skipped=rounds_elapsed - sim_rounds,
            decisions=decisions,
        )
        if _OBS.enabled:  # per-run: guarded, one attribute check when off
            _registry.inc("backend.fast.runs")
            _registry.inc("backend.fast.rounds_simulated", sim_rounds)
            _registry.inc(
                "backend.fast.rounds_skipped", rounds_elapsed - sim_rounds
            )
        return ExecutionResult(
            histories=result_histories,
            wake_rounds={nodes[i]: wake_round[i] for i in range(n)},
            wake_kinds={nodes[i]: wake_kind[i] for i in range(n)},
            done_local={nodes[i]: done_local[i] for i in range(n)},
            rounds_elapsed=rounds_elapsed,
            trace=trace,
            backend_stats=spec.stats,
        )
