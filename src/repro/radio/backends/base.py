"""Shared substrate of the pluggable simulation backends.

Every radio-model executor in the repository — the paper-faithful
per-round loop, the event-driven fast path, the channel variants and the
jamming adversary — consumes the same normalized problem description, a
:class:`SimulationSpec`, and produces the same
:class:`~repro.radio.events.ExecutionResult`. This module holds that
spec, the :class:`SimulationBackend` interface, the execution statistics
record, the diagnostic round-budget machinery all synchronous executors
(including the wired one) share, and the adaptive-adversary hooks
(:func:`reset_adversary` / :func:`adversary_is_adaptive`) that thread
deterministic seeded jammer state through every backend.

The contract between backends is *bit-for-bit equality*: for any spec a
backend supports, its ``ExecutionResult`` — histories, wake rounds and
kinds, ``done_local``, ``rounds_elapsed`` and the optional trace — must
equal the reference backend's exactly. The equivalence suite in
``tests/test_backends.py`` and the E22 benchmark gate enforce this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..events import ExecutionResult
from ..model import COLLISION, SILENCE, Message
from ..protocol import DRIP, ProgramFactory, ScheduleOblivious

#: Default ceiling on simulated global rounds; prevents broken protocols
#: from hanging the test suite. Callers with legitimately long executions
#: pass an explicit ``max_rounds``.
DEFAULT_MAX_ROUNDS = 1_000_000

#: Node lifecycle states shared by the backends.
ASLEEP, AWAKE, DONE = 0, 1, 2


class SimulationTimeout(RuntimeError):
    """Raised when a simulation exceeds its round budget.

    Diagnostic attributes (all ``None`` when raised without them):
    ``round_reached`` — the global round at which the budget ran out;
    ``awake`` / ``asleep`` / ``terminated`` — node counts at that round.
    """

    def __init__(
        self,
        message: str,
        *,
        round_reached: Optional[int] = None,
        awake: Optional[int] = None,
        asleep: Optional[int] = None,
        terminated: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.round_reached = round_reached
        self.awake = awake
        self.asleep = asleep
        self.terminated = terminated


class ProtocolViolation(RuntimeError):
    """Raised when a DRIP returns something that is not a valid action,
    or breaks the :class:`~repro.radio.protocol.ScheduleOblivious`
    commitment contract."""


class BackendUnsupported(RuntimeError):
    """An explicitly requested backend cannot execute this workload."""


def budget_exceeded(
    max_rounds: int,
    round_reached: int,
    *,
    awake: int,
    asleep: int,
    terminated: int,
    timeout_cls: type = SimulationTimeout,
) -> SimulationTimeout:
    """Build the diagnostic timeout every synchronous executor raises.

    The message reports how far the execution got and what the node
    population looked like, so a timeout is debuggable without rerunning
    under a trace.
    """
    return timeout_cls(
        f"simulation exceeded its budget of {max_rounds} global round(s) "
        f"(reached round {round_reached}: {awake} awake, {asleep} asleep, "
        f"{terminated} terminated)",
        round_reached=round_reached,
        awake=awake,
        asleep=asleep,
        terminated=terminated,
    )


@dataclass
class BackendStats:
    """Execution accounting one backend run leaves behind.

    ``rounds_simulated`` counts global rounds the backend actually
    processed; ``rounds_skipped`` counts rounds it proved silent and
    jumped over (always 0 for the reference backend); ``decisions``
    counts ``DRIP.decide`` consultations.
    """

    backend: str
    rounds_elapsed: int = 0
    rounds_simulated: int = 0
    rounds_skipped: int = 0
    decisions: int = 0

    def describe(self) -> str:
        """One-line human-readable summary (used by ``elect --verbose``)."""
        return (
            f"backend={self.backend}: {self.rounds_elapsed} round(s) total, "
            f"{self.rounds_simulated} simulated, {self.rounds_skipped} "
            f"skipped, {self.decisions} protocol decision(s)"
        )


class SimulationSpec:
    """Normalized, backend-independent description of one simulation.

    Construction performs all input validation (sorted node order,
    adjacency, non-negative wakeup tags, per-node program instantiation),
    so every backend starts from identical data. ``channel`` is ``None``
    for the paper's collision-detection model or a
    :class:`~repro.variants.channels.Channel`-shaped object; ``jammer``
    is ``None`` or a ``(global_round, node) -> bool`` schedule.
    """

    __slots__ = (
        "nodes",
        "adj",
        "tags",
        "programs",
        "channel",
        "jammer",
        "max_rounds",
        "record_trace",
        "effective_jams",
        "stats",
    )

    def __init__(
        self,
        network,
        factory: ProgramFactory,
        *,
        channel=None,
        jammer: Optional[Callable[[int, object], bool]] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        record_trace: bool = False,
    ) -> None:
        self.nodes: List[object] = sorted(network.nodes)
        if not self.nodes:
            raise ValueError("network has no nodes")
        self.adj: Dict[object, Tuple[object, ...]] = {
            v: tuple(sorted(network.neighbors(v))) for v in self.nodes
        }
        self.tags: Dict[object, int] = {v: network.tag(v) for v in self.nodes}
        for v, t in self.tags.items():
            if t < 0:
                raise ValueError(f"negative wakeup tag at node {v!r}")
        self.programs: Dict[object, DRIP] = {v: factory(v) for v in self.nodes}
        self.channel = channel
        self.jammer = jammer
        self.max_rounds = max_rounds
        self.record_trace = record_trace
        #: (round, node) pairs where jamming actually changed an entry
        #: (populated by the executing backend when ``jammer`` is set).
        self.effective_jams: List[Tuple[int, object]] = []
        #: :class:`BackendStats` of the last run on this spec.
        self.stats: Optional[BackendStats] = None

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    def oblivious(self) -> bool:
        """True iff every node's program exposes a compiled schedule."""
        return all(
            isinstance(p, ScheduleOblivious) for p in self.programs.values()
        )


class SimulationBackend(ABC):
    """One strategy for executing a :class:`SimulationSpec`.

    Implementations must be stateless between runs: all per-run outputs
    land in the returned :class:`~repro.radio.events.ExecutionResult`
    and on the spec (``stats``, ``effective_jams``).
    """

    #: CLI / knob name of the backend.
    name = "abstract"

    @abstractmethod
    def run(self, spec: SimulationSpec) -> ExecutionResult:
        """Execute the spec to completion and return the result."""

    @staticmethod
    def why_unsupported(spec: SimulationSpec) -> Optional[str]:
        """Reason this backend cannot run ``spec``, or None if it can."""
        return None


def reset_adversary(jammer) -> None:
    """Re-arm a stateful (adaptive) adversary before a run.

    Adaptive jam schedules — ones that key off observed channel feedback,
    like :class:`repro.adversary.ReactiveJammer` — carry deterministic
    seeded state. Every backend calls this at the top of ``run`` so the
    same :class:`SimulationSpec` replays bit-for-bit no matter how many
    times (or in which process) it is executed. Stateless schedules
    (anything without a ``reset`` method) are untouched.
    """
    if jammer is not None:
        reset = getattr(jammer, "reset", None)
        if reset is not None:
            reset()


def adversary_is_adaptive(jammer) -> bool:
    """True when ``jammer`` observes channel feedback round by round.

    An adaptive adversary exposes ``observe(global_round,
    transmitter_count)``; the reference backend feeds it every round
    *before* consulting the jam schedule for that round, so the jam
    decision may react to the current round's on-air activity. The fast
    backend cannot run such a schedule — it skips silent stretches the
    adversary is entitled to observe — and reports it via
    :meth:`SimulationBackend.why_unsupported` instead.
    """
    return jammer is not None and hasattr(jammer, "observe")


def jammed_listener_entries(channel, count: int, payload):
    """``(jammed, honest)`` entries of a jammed, listening, awake node.

    A jammed round sounds like a ``>= 2``-transmitter round rendered
    through the channel: ``(∗)`` under collision detection, silence
    without it, a carrier when beeping. ``honest`` is what the un-jammed
    round would have recorded — the pair differing is what makes a jam
    *effective*. Shared by both backends so the rendering rules cannot
    drift apart.
    """
    if channel is None:
        if count >= 2:
            honest = COLLISION
        elif count == 1:
            honest = Message(payload)
        else:
            honest = SILENCE
        return COLLISION, honest
    return channel.entry(2, None), channel.entry(count, payload)


def jammed_spontaneous_entry(channel, count: int):
    """``H[0]`` of a node waking spontaneously in a jammed round (the jam
    sounds like a ``>= 2``-transmitter round). Shared by both backends."""
    if channel is None:
        return COLLISION
    return channel.spontaneous_entry(max(count, 2))


def silent_neutral(channel) -> bool:
    """True when ``channel`` treats transmission-free rounds as silence.

    The fast backend may skip a round only if, with zero transmitting
    neighbours, every listener records ``(∅)`` and no sleeper wakes —
    true of the paper's model and of every shipped variant channel.
    """
    if channel is None:
        return True
    return channel.entry(0, None) is SILENCE and not channel.wakes(0)
