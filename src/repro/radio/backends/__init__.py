"""Pluggable simulation backends for the radio substrate.

Two executors share one contract — bit-for-bit
:class:`~repro.radio.events.ExecutionResult` equality:

* :class:`~repro.radio.backends.reference.ReferenceBackend` — the
  paper-faithful per-round, per-node loop (the oracle; supports every
  workload, including adaptive protocols, variant channels and opaque
  jam schedules);
* :class:`~repro.radio.backends.fast.FastBackend` — the event-driven,
  schedule-compiled executor for
  :class:`~repro.radio.protocol.ScheduleOblivious` protocols; it skips
  provably silent round stretches and does O(events) work instead of
  O(rounds × n).

:func:`resolve_backend` maps the user-facing knob
(``"reference" | "fast" | "auto"``) to an executor for a given
:class:`~repro.radio.backends.base.SimulationSpec`; ``"auto"`` picks the
fast path exactly when the spec supports it. See ``docs/simulation.md``.
"""

from __future__ import annotations

from .base import (
    DEFAULT_MAX_ROUNDS,
    BackendStats,
    BackendUnsupported,
    ProtocolViolation,
    SimulationBackend,
    SimulationSpec,
    SimulationTimeout,
    adversary_is_adaptive,
    budget_exceeded,
    reset_adversary,
    silent_neutral,
)
from .fast import FastBackend
from .reference import ReferenceBackend

#: Accepted values of every ``backend=`` knob.
BACKEND_NAMES = ("reference", "fast", "auto")

_REFERENCE = ReferenceBackend()
_FAST = FastBackend()


def resolve_backend(name: str, spec: SimulationSpec) -> SimulationBackend:
    """Map a backend knob value to the executor that will run ``spec``.

    ``"reference"`` and ``"fast"`` are explicit requests (``"fast"``
    raises :class:`BackendUnsupported` if the spec cannot run
    event-driven); ``"auto"`` selects the fast backend exactly when the
    spec supports it and falls back to the reference loop otherwise.
    """
    if name == "reference":
        return _REFERENCE
    if name == "fast":
        reason = FastBackend.why_unsupported(spec)
        if reason is not None:
            raise BackendUnsupported(f"fast backend: {reason}")
        return _FAST
    if name == "auto":
        return _REFERENCE if FastBackend.why_unsupported(spec) else _FAST
    raise ValueError(
        f"unknown backend {name!r}; choose from {BACKEND_NAMES}"
    )


__all__ = [
    "BACKEND_NAMES",
    "BackendStats",
    "BackendUnsupported",
    "DEFAULT_MAX_ROUNDS",
    "FastBackend",
    "ProtocolViolation",
    "ReferenceBackend",
    "SimulationBackend",
    "SimulationSpec",
    "SimulationTimeout",
    "adversary_is_adaptive",
    "budget_exceeded",
    "reset_adversary",
    "resolve_backend",
    "silent_neutral",
]
