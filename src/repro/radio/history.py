"""Sparse node histories.

A node's history is the sequence ``H_v[0], H_v[1], ...`` of
:mod:`repro.radio.model` entries. Canonical-DRIP executions are
overwhelmingly silent — a node transmits once per phase and hears at most
``deg(v)`` events per phase — so we store only the non-silent entries in a
dict keyed by local round, plus the total length. This keeps memory and
comparison cost proportional to the number of *events* rather than the
number of *rounds* (an O(n²σ) → O(nΔ)-ish saving per node).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .model import COLLISION, SILENCE, HistoryEntry, Message, entry_symbol


class History:
    """An append-only, sparsely stored sequence of history entries.

    Index ``i`` is node-local round ``i``; ``len(history)`` is the number of
    recorded rounds, so the next round to be decided is round
    ``len(history)`` with knowledge ``H[0 .. len-1]`` (paper Section 2.2).
    """

    __slots__ = ("_events", "_length")

    def __init__(self) -> None:
        self._events: Dict[int, HistoryEntry] = {}
        self._length = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_entries(cls, entries) -> "History":
        """Build a history from an iterable of entries (mostly for tests)."""
        h = cls()
        for e in entries:
            h.append(e)
        return h

    def append(self, entry: HistoryEntry) -> None:
        """Record the entry for local round ``len(self)``."""
        if entry is not SILENCE:
            self._events[self._length] = entry
        self._length += 1

    def set_entry(self, i: int, entry: HistoryEntry) -> None:
        """Record ``entry`` for local round ``i`` (>= the current length),
        implicitly filling the rounds in between with silence.

        The sparse-write primitive of the event-driven simulation
        backend: silence stores nothing, so out-of-order-in-time but
        forward-only writes cost O(1) regardless of the gap.
        """
        if i < self._length:
            raise IndexError(
                f"round {i} already recorded (history length {self._length})"
            )
        if entry is not SILENCE:
            self._events[i] = entry
        self._length = i + 1

    def extend_silent(self, length: int) -> None:
        """Append silent rounds until ``len(self) >= length`` (no-op when
        already that long) — O(1), silence is never stored."""
        if self._length < length:
            self._length = length

    def copy(self) -> "History":
        """Independent copy (same entries and length)."""
        h = History()
        h._events = dict(self._events)
        h._length = self._length
        return h

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __getitem__(self, i: int) -> HistoryEntry:
        if isinstance(i, slice):
            raise TypeError("use window(lo, hi) instead of slicing")
        if i < 0:
            i += self._length
        if not 0 <= i < self._length:
            raise IndexError(f"round {i} outside history of length {self._length}")
        return self._events.get(i, SILENCE)

    def __iter__(self) -> Iterator[HistoryEntry]:
        for i in range(self._length):
            yield self._events.get(i, SILENCE)

    def window(self, lo: int, hi: int) -> List[HistoryEntry]:
        """Entries for local rounds ``lo .. hi`` inclusive (paper's
        ``H[lo ... hi]`` notation)."""
        if lo < 0 or hi >= self._length:
            raise IndexError(
                f"window [{lo}, {hi}] outside history of length {self._length}"
            )
        return [self._events.get(i, SILENCE) for i in range(lo, hi + 1)]

    def events(self) -> List[Tuple[int, HistoryEntry]]:
        """Sorted list of ``(local_round, entry)`` for non-silent entries."""
        return sorted(self._events.items())

    def events_in(self, lo: int, hi: int) -> List[Tuple[int, HistoryEntry]]:
        """Non-silent events with ``lo <= round <= hi`` (sorted).

        Iterates over stored events rather than rounds, so it is cheap even
        for very wide windows.
        """
        return sorted((i, e) for i, e in self._events.items() if lo <= i <= hi)

    def first_message_round(self) -> Optional[int]:
        """Local round of the first ``(M)`` entry, or None (paper's rcv_w)."""
        rounds = [i for i, e in self._events.items() if isinstance(e, Message)]
        return min(rounds) if rounds else None

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def key(self) -> Tuple:
        """Canonical hashable form: equal iff the histories are equal."""
        return (self._length, tuple(sorted(self._events.items(), key=lambda kv: kv[0])))

    def prefix_key(self, upto: int) -> Tuple:
        """Canonical form of ``H[0 .. upto]`` (inclusive)."""
        if upto >= self._length:
            raise IndexError(
                f"prefix through {upto} outside history of length {self._length}"
            )
        items = tuple(sorted((i, e) for i, e in self._events.items() if i <= upto))
        return (upto + 1, items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return self._length == other._length and self._events == other._events

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return hash(self.key())

    # ------------------------------------------------------------------
    # debugging
    # ------------------------------------------------------------------
    def to_list(self) -> List[HistoryEntry]:
        """Dense entry list (silence included)."""
        return list(self)

    def render(self) -> str:
        """Compact printable form, e.g. ``..<1>.*..`` (silence as dots)."""
        return "".join(entry_symbol(e) for e in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._length <= 64:
            return f"History({self.render()!r})"
        return f"History(len={self._length}, events={len(self._events)})"


def shifted_view_key(history: History, start: int, end: int) -> Tuple:
    """Canonical key of the subsequence ``H[start .. end]`` re-based to 0.

    Used by the patient-DRIP wrapper (Lemma 3.12), where the wrapped
    protocol sees the suffix of the real history starting at round ``s_w``.
    """
    if start < 0 or end >= len(history) or end < start - 1:
        raise IndexError(f"invalid window [{start}, {end}] for {history!r}")
    items = tuple(
        sorted((i - start, e) for i, e in history._events.items() if start <= i <= end)
    )
    return (end - start + 1, items)
