"""Execution records produced by the radio simulator.

``RoundRecord`` captures what happened in one global round (useful for
debugging protocols and for the indistinguishability experiments), and
``ExecutionResult`` is the complete outcome of a simulation: per-node
histories, wakeup data, termination data and an optional round-by-round
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .history import History

#: Wakeup kinds recorded in the trace.
SPONTANEOUS = "spontaneous"
FORCED = "forced"


@dataclass
class RoundRecord:
    """Events of a single global round."""

    global_round: int
    #: node -> transmitted message payload
    transmitters: Dict[object, object] = field(default_factory=dict)
    #: list of (node, kind) woken up this round; kind in {SPONTANEOUS, FORCED}
    wakeups: List[Tuple[object, str]] = field(default_factory=list)
    #: nodes that terminated this round
    terminated: List[object] = field(default_factory=list)

    @property
    def quiet(self) -> bool:
        """True when nothing observable happened this round."""
        return not (self.transmitters or self.wakeups or self.terminated)


class ExecutionResult:
    """Outcome of simulating a protocol on a configuration.

    Attributes
    ----------
    histories:
        node -> terminal :class:`~repro.radio.history.History`
        ``H_v[0 .. done_v]`` (the terminate-round entry included, matching
        the paper's decision-function signature).
    wake_rounds:
        node -> global round of wakeup.
    wake_kinds:
        node -> ``SPONTANEOUS`` or ``FORCED``.
    done_local:
        node -> ``done_v``: the local round in which the node's DRIP
        returned terminate.
    rounds_elapsed:
        total number of global rounds simulated (0-based last round + 1).
    trace:
        list of :class:`RoundRecord` when trace recording was enabled.
    backend_stats:
        :class:`~repro.radio.backends.base.BackendStats` of the run that
        produced this result, or None (e.g. closed-form replay). Not part
        of the equality contract — backends legitimately differ here.
    """

    __slots__ = (
        "histories",
        "wake_rounds",
        "wake_kinds",
        "done_local",
        "rounds_elapsed",
        "trace",
        "backend_stats",
    )

    def __init__(
        self,
        histories: Dict[object, History],
        wake_rounds: Dict[object, int],
        wake_kinds: Dict[object, str],
        done_local: Dict[object, int],
        rounds_elapsed: int,
        trace: Optional[List[RoundRecord]] = None,
        backend_stats=None,
    ) -> None:
        self.histories = histories
        self.wake_rounds = wake_rounds
        self.wake_kinds = wake_kinds
        self.done_local = done_local
        self.rounds_elapsed = rounds_elapsed
        self.trace = trace
        self.backend_stats = backend_stats

    def __eq__(self, other: object) -> bool:
        """Bit-for-bit execution equality: histories (sparse entries and
        length), wakeup rounds/kinds, termination rounds, total rounds and
        the trace must all coincide. ``backend_stats`` is excluded — it
        describes how the result was computed, not what happened."""
        if not isinstance(other, ExecutionResult):
            return NotImplemented
        return (
            self.rounds_elapsed == other.rounds_elapsed
            and self.histories == other.histories
            and self.wake_rounds == other.wake_rounds
            and self.wake_kinds == other.wake_kinds
            and self.done_local == other.done_local
            and self.trace == other.trace
        )

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    #: Results are deeply mutable containers compared by value; a hash
    #: consistent with ``__eq__`` cannot be stable, so they are
    #: deliberately unhashable.
    __hash__ = None

    # ------------------------------------------------------------------
    # derived queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[object]:
        return sorted(self.histories)

    def done_global(self, v: object) -> int:
        """Global round in which node ``v`` terminated."""
        return self.wake_rounds[v] + self.done_local[v]

    def max_done_local(self) -> int:
        """Largest local termination round (the paper's time measure)."""
        return max(self.done_local.values())

    def history(self, v: object) -> History:
        """Terminal history of node ``v``."""
        return self.histories[v]

    def all_spontaneous(self) -> bool:
        """True iff every node woke up spontaneously (patient executions)."""
        return all(kind == SPONTANEOUS for kind in self.wake_kinds.values())

    def history_partition(self) -> List[List[object]]:
        """Group nodes by equality of their *entire* terminal histories."""
        groups: Dict[tuple, List[object]] = {}
        for v in self.nodes:
            groups.setdefault(self.histories[v].key(), []).append(v)
        return sorted(groups.values())

    def prefix_partition(self, upto: int) -> List[List[object]]:
        """Group nodes by equality of ``H[0 .. upto]``."""
        groups: Dict[tuple, List[object]] = {}
        for v in self.nodes:
            groups.setdefault(self.histories[v].prefix_key(upto), []).append(v)
        return sorted(groups.values())

    def unique_history_nodes(self) -> List[object]:
        """Nodes whose terminal history differs from every other node's."""
        return [grp[0] for grp in self.history_partition() if len(grp) == 1]

    def decide_leaders(self, decision: Callable[[History], int]) -> List[object]:
        """Apply a decision function to every node's terminal history."""
        return [v for v in self.nodes if decision(self.histories[v]) == 1]

    def elects_unique_leader(self, decision: Callable[[History], int]) -> bool:
        """True iff exactly one node's decision output is 1."""
        return len(self.decide_leaders(decision)) == 1

    def transmission_rounds(self) -> List[int]:
        """Global rounds in which at least one node transmitted (from trace)."""
        if self.trace is None:
            raise ValueError("simulation was run without trace recording")
        return [rec.global_round for rec in self.trace if rec.transmitters]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionResult(n={len(self.histories)}, "
            f"rounds={self.rounds_elapsed}, "
            f"max_done={self.max_done_local()})"
        )
