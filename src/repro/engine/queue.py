"""Durable SQLite-backed work queue for distributed censuses.

One coordinator enumerates a census into shard tasks; N independent
worker *processes* — or machines sharing a filesystem — lease shards,
classify them, and commit results. The queue is a single SQLite file in
WAL mode, so it needs no server, survives any worker dying, and gives
the one primitive the whole design rests on: an atomic
read-modify-write transaction (``BEGIN IMMEDIATE``) for leasing.

Lifecycle of a shard row::

    pending --lease--> leased --commit--> done
       ^                 |
       |   lease expired |--fail/expire (attempts < cap)
       +-----------------+
                         |--fail/expire (attempts >= cap)--> failed

* **Lease** — the best pending shard (ranked by
  :mod:`repro.engine.scheduler`) is atomically marked ``leased`` with
  an owner id and a deadline ``lease_expires``. Within one transaction
  at most one worker can win a shard, so double classification of a
  live shard is impossible by construction.
* **Heartbeat** — the owner periodically pushes ``lease_expires``
  forward. A worker that is merely slow keeps its lease; a worker that
  was SIGKILL'd stops heartbeating and its lease expires.
* **Reclaim** — every lease call first sweeps expired leases back to
  ``pending`` (or to ``failed`` once ``attempts`` reaches the retry
  cap), so a dead worker loses at most its one in-flight shard and the
  shard is retried by whoever leases next.
* **Commit** — results are stored in the row itself, guarded by the
  owner id: a stale worker whose lease was reclaimed cannot overwrite
  the retry's result, and committing an already-``done`` shard is a
  no-op. Merging (:func:`repro.engine.pipeline.collect_census_queue`)
  reads each ``done`` row exactly once, so the merge is idempotent.

Queue state is mirrored into the process observability registry
(``queue.pending`` / ``queue.leased`` / ``queue.done`` /
``queue.failed`` gauges, ``queue.leases`` / ``queue.reclaimed`` /
``queue.retried`` counters) and, when tracing is enabled,
``shard.leased`` / ``shard.reclaimed`` events join the run-event log.

The queue is record-agnostic about *what* a shard computes: it stores
opaque JSON payloads plus a metadata dict written at creation time.
The census semantics (workload reconstruction, classification, merge)
live in :mod:`repro.engine.pipeline`.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs.runtime import STATE as _OBS
from ..obs.runtime import event as _obs_event
from ..obs.runtime import registry as _registry
from .scheduler import ShardCandidate, observed_miss_rate, rank

#: Version stamped into the queue's meta table; opening a queue written
#: by a different schema version fails loudly instead of misbehaving.
QUEUE_SCHEMA_VERSION = 1

#: Default seconds a lease stays valid without a heartbeat.
DEFAULT_LEASE_TTL = 30.0

#: Default attempts before a shard is marked ``failed`` (poison cap).
DEFAULT_MAX_ATTEMPTS = 3

#: The closed set of shard states.
SHARD_STATES = ("pending", "leased", "done", "failed")


class QueueError(RuntimeError):
    """A work-queue operation failed (schema/fingerprint mismatch, ...)."""


@dataclass(frozen=True)
class Lease:
    """A successfully leased shard: the worker's ticket to work on it.

    ``attempt`` is 1-based (first execution is attempt 1); ``expires``
    is the wall-clock deadline the owner must heartbeat before.
    """

    index: int
    start: int
    stop: int
    cost: float
    owner: str
    attempt: int
    expires: float

    @property
    def size(self) -> int:
        """Number of workload items in the leased shard."""
        return self.stop - self.start


def default_owner() -> str:
    """Stable per-process owner id: ``hostname:pid``."""
    return f"{socket.gethostname()}:{os.getpid()}"


@contextmanager
def heartbeat_guard(queue: "WorkQueue", lease: Lease):
    """Keep ``lease`` alive for the duration of a ``with`` block.

    A daemon thread extends the lease every ``lease_ttl / 4`` seconds
    (stopping early if the lease was reclaimed — the commit will be
    rejected anyway) and is joined on exit, however the block ends. This
    is the worker-side idiom shared by every queue consumer (census
    shards, campaign shards): long work under an active lease is never
    reclaimed from a live worker.
    """
    stop = threading.Event()

    def _beat() -> None:
        interval = max(0.05, queue.lease_ttl / 4.0)
        while not stop.wait(interval):
            if not queue.heartbeat(lease):
                return

    thread = threading.Thread(target=_beat, daemon=True)
    thread.start()
    try:
        yield lease
    finally:
        stop.set()
        thread.join()


class WorkQueue:
    """The durable shard queue (one SQLite file, WAL mode).

    Open an existing queue with ``WorkQueue(path)``; create (or resume)
    one with :meth:`create`. Instances are safe to share between the
    threads of one process (a lock serializes the connection); separate
    processes each open their own instance on the same path.
    """

    def __init__(
        self,
        path: str,
        *,
        lease_ttl: Optional[float] = None,
        max_attempts: Optional[int] = None,
    ) -> None:
        if not os.path.exists(path):
            raise QueueError(f"no work queue at {path!r} (create one first)")
        self.path = path
        self._lock = threading.RLock()
        self._conn = self._connect(path)
        stored = self.meta()
        if stored.get("schema") != QUEUE_SCHEMA_VERSION:
            raise QueueError(
                f"queue {path!r} has schema {stored.get('schema')!r}, "
                f"this build speaks {QUEUE_SCHEMA_VERSION}"
            )
        self.lease_ttl = (
            float(lease_ttl)
            if lease_ttl is not None
            else float(stored.get("lease_ttl", DEFAULT_LEASE_TTL))
        )
        self.max_attempts = (
            int(max_attempts)
            if max_attempts is not None
            else int(stored.get("max_attempts", DEFAULT_MAX_ATTEMPTS))
        )
        # mirror the queue depth into this process's registry on open,
        # so a coordinator that only creates/merges (all leasing happens
        # in worker processes) still reports live gauges
        self._publish()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def _connect(path: str) -> sqlite3.Connection:
        conn = sqlite3.connect(path, timeout=30.0, check_same_thread=False)
        # manual transaction control: single mutations autocommit, the
        # lease read-modify-write wraps itself in BEGIN IMMEDIATE
        conn.isolation_level = None
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        return conn

    @classmethod
    def create(
        cls,
        path: str,
        shards: Sequence[Tuple[int, int, int, float]],
        meta: Dict[str, object],
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        now: Optional[float] = None,
    ) -> "WorkQueue":
        """Create a queue, or resume one whose fingerprint matches.

        ``shards`` is a sequence of ``(index, start, stop, cost)``
        tuples; ``meta`` is a JSON-able dict describing the run (the
        pipeline stores the workload spec, census options, and cache
        path there). Creation is idempotent: if ``path`` already holds
        a queue whose meta matches ``meta`` key for key, the existing
        queue is opened untouched — a restarted coordinator resumes a
        half-finished run instead of double-enqueueing. A *mismatched*
        existing queue raises :class:`QueueError` (point different runs
        at different paths).
        """
        if os.path.exists(path):
            queue = cls(path, lease_ttl=lease_ttl, max_attempts=max_attempts)
            stored = queue.meta()
            mismatch = {
                k: (stored.get(k), v)
                for k, v in meta.items()
                if stored.get(k) != v
            }
            if mismatch:
                queue.close()
                raise QueueError(
                    f"queue {path!r} holds a different run; "
                    f"mismatched meta: {sorted(mismatch)}"
                )
            return queue
        now = time.time() if now is None else now
        conn = cls._connect(path)
        try:
            try:
                conn.execute("BEGIN IMMEDIATE")
                conn.execute(
                    "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)"
                )
                conn.execute(
                    """
                    CREATE TABLE shards (
                        idx INTEGER PRIMARY KEY,
                        start INTEGER NOT NULL,
                        stop INTEGER NOT NULL,
                        cost REAL NOT NULL,
                        status TEXT NOT NULL DEFAULT 'pending',
                        attempts INTEGER NOT NULL DEFAULT 0,
                        owner TEXT,
                        lease_expires REAL,
                        enqueued_at REAL NOT NULL,
                        rows TEXT,
                        stats TEXT,
                        error TEXT
                    )
                    """
                )
                conn.execute(
                    "CREATE INDEX shards_status ON shards (status)"
                )
                payload = dict(meta)
                payload.setdefault("schema", QUEUE_SCHEMA_VERSION)
                payload.setdefault("lease_ttl", lease_ttl)
                payload.setdefault("max_attempts", max_attempts)
                conn.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    [(k, json.dumps(v)) for k, v in payload.items()],
                )
                conn.executemany(
                    "INSERT INTO shards (idx, start, stop, cost, enqueued_at)"
                    " VALUES (?, ?, ?, ?, ?)",
                    [(i, a, b, c, now) for i, a, b, c in shards],
                )
                conn.execute("COMMIT")
            except sqlite3.OperationalError:
                # raced with another coordinator creating the same queue:
                # retry through the open-and-verify path above
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.OperationalError:
                    pass
                conn.close()
                if not os.path.exists(path):
                    raise
                return cls.create(
                    path,
                    shards,
                    meta,
                    lease_ttl=lease_ttl,
                    max_attempts=max_attempts,
                    now=now,
                )
        finally:
            conn.close()
        return cls(path, lease_ttl=lease_ttl, max_attempts=max_attempts)

    # ------------------------------------------------------------------
    # metadata / accounting
    # ------------------------------------------------------------------
    def meta(self) -> Dict[str, object]:
        """The queue's metadata dict (decoded from the meta table)."""
        with self._lock:
            rows = self._conn.execute("SELECT key, value FROM meta").fetchall()
        return {k: json.loads(v) for k, v in rows}

    def _counter(self, key: str) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (f"counter.{key}",)
        ).fetchone()
        return int(json.loads(row[0])) if row else 0

    def _bump_counter(self, key: str, n: int = 1) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = ?",
            (f"counter.{key}", json.dumps(n), json.dumps(self._counter(key) + n)),
        )

    def counts(self) -> Dict[str, int]:
        """Shard-state counts plus cumulative retry accounting.

        ``{"total", "pending", "leased", "done", "failed", "retried",
        "reclaimed"}`` — ``retried`` counts re-executions granted
        (leases beyond a shard's first), ``reclaimed`` counts expired
        leases swept back. This dict is what ``census --stats-json``
        ships as the ``queue`` group and what the registry gauges
        mirror.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) FROM shards GROUP BY status"
            ).fetchall()
            out = {state: 0 for state in SHARD_STATES}
            out.update(dict(rows))
            out["total"] = sum(out[state] for state in SHARD_STATES)
            out["retried"] = self._counter("retried")
            out["reclaimed"] = self._counter("reclaimed")
        return out

    def _publish(self, counts: Optional[Dict[str, int]] = None) -> None:
        """Mirror queue depth into the process metrics registry."""
        counts = counts or self.counts()
        for state in SHARD_STATES:
            _registry.set_gauge(f"queue.{state}", counts[state])

    # ------------------------------------------------------------------
    # the lease protocol
    # ------------------------------------------------------------------
    def _reclaim_expired(self, now: float) -> int:
        """Sweep expired leases (caller holds the write transaction)."""
        expired = self._conn.execute(
            "SELECT idx, attempts, owner FROM shards "
            "WHERE status = 'leased' AND lease_expires < ?",
            (now,),
        ).fetchall()
        for idx, attempts, owner in expired:
            exhausted = attempts >= self.max_attempts
            self._conn.execute(
                "UPDATE shards SET status = ?, owner = NULL, "
                "lease_expires = NULL, error = ? WHERE idx = ?",
                (
                    "failed" if exhausted else "pending",
                    f"lease by {owner!r} expired (attempt {attempts})"
                    if exhausted
                    else None,
                    idx,
                ),
            )
            self._bump_counter("reclaimed")
            _registry.inc("queue.reclaimed")
            if _OBS.enabled:
                _obs_event(
                    "shard.reclaimed",
                    shard=idx,
                    owner=owner,
                    attempt=attempts,
                    failed=exhausted,
                )
        return len(expired)

    def lease(
        self, owner: Optional[str] = None, *, now: Optional[float] = None
    ) -> Optional[Lease]:
        """Atomically claim the best pending shard; None when none is.

        One ``BEGIN IMMEDIATE`` transaction sweeps expired leases, ranks
        the pending shards by expected yield
        (:func:`repro.engine.scheduler.rank`, fed the observed miss
        rate of committed shards), and marks the winner ``leased`` for
        this owner. ``None`` means no shard is *currently* leasable —
        the queue may still hold live leases owned by other workers, so
        callers poll :meth:`finished` before giving up.
        """
        owner = owner or default_owner()
        now = time.time() if now is None else now
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._reclaim_expired(now)
                pending = self._conn.execute(
                    "SELECT idx, start, stop, cost, attempts, enqueued_at "
                    "FROM shards WHERE status = 'pending'"
                ).fetchall()
                if not pending:
                    self._conn.execute("COMMIT")
                    self._publish()
                    return None
                stats = [
                    json.loads(s)
                    for (s,) in self._conn.execute(
                        "SELECT stats FROM shards "
                        "WHERE status = 'done' AND stats IS NOT NULL"
                    ).fetchall()
                ]
                miss = observed_miss_rate(stats)
                ranked = rank(
                    [
                        ShardCandidate(index=i, cost=c, enqueued_at=e)
                        for i, _, _, c, _, e in pending
                    ],
                    now,
                    miss_rate=1.0 if miss is None else miss,
                )
                by_index = {row[0]: row for row in pending}
                idx, start, stop, cost, attempts, _ = by_index[
                    ranked[0].index
                ]
                expires = now + self.lease_ttl
                self._conn.execute(
                    "UPDATE shards SET status = 'leased', owner = ?, "
                    "lease_expires = ?, attempts = attempts + 1 "
                    "WHERE idx = ?",
                    (owner, expires, idx),
                )
                if attempts > 0:
                    self._bump_counter("retried")
                    _registry.inc("queue.retried")
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._publish()
        _registry.inc("queue.leases")
        if _OBS.enabled:
            _obs_event(
                "shard.leased", shard=idx, owner=owner, attempt=attempts + 1
            )
        return Lease(
            index=idx,
            start=start,
            stop=stop,
            cost=cost,
            owner=owner,
            attempt=attempts + 1,
            expires=expires,
        )

    def heartbeat(
        self, lease: Lease, *, now: Optional[float] = None
    ) -> bool:
        """Extend a live lease; False means the lease was lost.

        A lease is lost when it expired and was reclaimed (possibly
        already re-leased to another owner) — the caller should abandon
        the shard; its commit would be rejected anyway.
        """
        now = time.time() if now is None else now
        with self._lock:
            cur = self._conn.execute(
                "UPDATE shards SET lease_expires = ? "
                "WHERE idx = ? AND status = 'leased' AND owner = ?",
                (now + self.lease_ttl, lease.index, lease.owner),
            )
            self._conn.commit()
        return cur.rowcount == 1

    def commit(
        self,
        lease: Lease,
        rows: List[Dict],
        stats: Optional[Dict[str, object]] = None,
        *,
        now: Optional[float] = None,
    ) -> bool:
        """Store a shard's result and mark it ``done``; owner-guarded.

        Returns False (storing nothing) when the lease was lost to a
        reclaim — the retry's commit, not this stale one, wins. A shard
        that is already ``done`` is left untouched, which together with
        the owner guard makes result merging idempotent: every done
        shard carries exactly one result, written exactly once.
        """
        with self._lock:
            cur = self._conn.execute(
                "UPDATE shards SET status = 'done', rows = ?, stats = ?, "
                "owner = NULL, lease_expires = NULL, error = NULL "
                "WHERE idx = ? AND status = 'leased' AND owner = ?",
                (
                    json.dumps(rows, separators=(",", ":"), sort_keys=True),
                    json.dumps(
                        stats or {}, separators=(",", ":"), sort_keys=True
                    ),
                    lease.index,
                    lease.owner,
                ),
            )
            self._conn.commit()
            self._publish()
        return cur.rowcount == 1

    def fail(
        self, lease: Lease, error: str, *, now: Optional[float] = None
    ) -> bool:
        """Report a shard execution error; owner-guarded like commit.

        Below the attempt cap the shard returns to ``pending`` for a
        retry; at the cap it is marked ``failed`` permanently (a poison
        shard must not stall the rest of the run — the queue keeps
        draining and the coordinator reports the failure at collect
        time).
        """
        with self._lock:
            exhausted = lease.attempt >= self.max_attempts
            cur = self._conn.execute(
                "UPDATE shards SET status = ?, owner = NULL, "
                "lease_expires = NULL, error = ? "
                "WHERE idx = ? AND status = 'leased' AND owner = ?",
                (
                    "failed" if exhausted else "pending",
                    f"{error} (attempt {lease.attempt})",
                    lease.index,
                    lease.owner,
                ),
            )
            self._conn.commit()
            self._publish()
        return cur.rowcount == 1

    # ------------------------------------------------------------------
    # inspection / recovery
    # ------------------------------------------------------------------
    def finished(self) -> bool:
        """True when no shard can make further progress.

        Every shard is ``done`` or ``failed`` — nothing pending, no
        live lease. Workers use this to decide between waiting (a peer
        may still die and surrender its shard) and exiting.
        """
        counts = self.counts()
        return counts["pending"] == 0 and counts["leased"] == 0

    def results(self) -> Iterator[Tuple[int, List[Dict], Dict]]:
        """Yield ``(index, rows, stats)`` for every done shard, in
        shard order. Each done shard appears exactly once."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT idx, rows, stats FROM shards "
                "WHERE status = 'done' ORDER BY idx"
            ).fetchall()
        for idx, payload, stats in rows:
            yield idx, json.loads(payload), json.loads(stats or "{}")

    def failures(self) -> List[Tuple[int, str]]:
        """``(index, error)`` for every permanently failed shard."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT idx, error FROM shards "
                "WHERE status = 'failed' ORDER BY idx"
            ).fetchall()
        return [(idx, err or "") for idx, err in rows]

    def shard_states(self) -> List[Dict[str, object]]:
        """Per-shard status rows for ``queue status`` (operator view)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT idx, start, stop, cost, status, attempts, owner, "
                "lease_expires, error FROM shards ORDER BY idx"
            ).fetchall()
        keys = (
            "index", "start", "stop", "cost", "status", "attempts",
            "owner", "lease_expires", "error",
        )
        return [dict(zip(keys, row)) for row in rows]

    def requeue(
        self, *, include_failed: bool = False, now: Optional[float] = None
    ) -> int:
        """Force leased (and optionally failed) shards back to pending.

        An operator tool for a queue whose workers are known dead: live
        leases are *not* distinguished from stale ones, so run it only
        when no worker is active. Requeued failed shards get a fresh
        attempt budget. Returns the number of shards reset.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                states = ("leased", "failed") if include_failed else ("leased",)
                marks = ",".join("?" for _ in states)
                cur = self._conn.execute(
                    f"UPDATE shards SET status = 'pending', owner = NULL, "
                    f"lease_expires = NULL, error = NULL, attempts = 0 "
                    f"WHERE status IN ({marks})",
                    states,
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._publish()
        return cur.rowcount

    def close(self) -> None:
        """Close the SQLite connection (the file keeps all state)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "WorkQueue":
        """Context-manager entry: the queue itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    def describe(self) -> str:
        """One-line status summary for CLI footers and logs."""
        c = self.counts()
        return (
            f"queue: {c['total']} shard(s) — {c['pending']} pending, "
            f"{c['leased']} leased, {c['done']} done, {c['failed']} failed "
            f"({c['retried']} retried, {c['reclaimed']} reclaimed)"
        )
