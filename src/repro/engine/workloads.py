"""Deterministic, slice-regenerable census workloads.

A *workload* is a finite, deterministic sequence of configurations that
can be regenerated from any index range: ``len(w)`` gives its size and
``w.generate(start, stop)`` yields exactly the items a full enumeration
would yield at positions ``start .. stop-1``. That property is what lets
the sharded pipeline (:mod:`repro.engine.pipeline`) hold only one shard
in memory at a time and resume an interrupted run without replaying the
work that already checkpointed: a shard is fully described by its index
range, never by materialized configurations.

The module also hosts the seeded single-configuration builders shared by
the test and benchmark harnesses (``seeded_config`` and friends), so both
``conftest.py`` files re-export one implementation instead of shadowing
each other.
"""

from __future__ import annotations

import random
from itertools import islice
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..core.configuration import Configuration
from ..graphs.generators import build, random_connected_gnp_edges
from ..graphs.tags import uniform_random


# ----------------------------------------------------------------------
# seeded single-configuration builders (shared by tests and benchmarks)
# ----------------------------------------------------------------------
def seeded_config(seed: int, n: int, span: int, p: float = 0.3) -> Configuration:
    """One seeded random connected G(n, p) configuration with uniform tags."""
    edges = random_connected_gnp_edges(n, p, seed)
    tags = uniform_random(range(n), span, seed + 1)
    return build(edges, tags, n=n)


def make_random_config(
    seed: int, n_lo: int = 3, n_hi: int = 10, span_hi: int = 3, p: float = 0.35
) -> Configuration:
    """One seeded random configuration with randomized size and span."""
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    span = rng.randint(0, span_hi)
    edges = random_connected_gnp_edges(n, p, rng.randrange(2**31))
    tags = uniform_random(range(n), span, rng.randrange(2**31))
    return build(edges, tags, n=n)


def random_config_batch(
    count: int, base_seed: int = 1234, **kw
) -> List[Configuration]:
    """A reproducible batch of :func:`make_random_config` configurations."""
    return [make_random_config(base_seed + i, **kw) for i in range(count)]


def feasible_batch(
    count: int, seed: int, n: int, span: int, p: float = 0.3
) -> List[Configuration]:
    """Reproducible batch of *feasible* random configurations."""
    from ..core.classifier import classify

    out: List[Configuration] = []
    attempt = 0
    while len(out) < count and attempt < 50 * count:
        cfg = seeded_config(seed + attempt, n, span, p)
        attempt += 1
        if classify(cfg).feasible:
            out.append(cfg)
    return out


# ----------------------------------------------------------------------
# workload protocol
# ----------------------------------------------------------------------
class Workload:
    """A finite deterministic configuration sequence, regenerable by slice.

    Subclasses implement :meth:`__len__` and :meth:`generate`; two calls
    to ``generate`` with the same range must yield equal configurations
    (this is the contract shard resume relies on). Workloads that want
    to run under the distributed queue additionally implement
    :meth:`to_spec` (a JSON-able self-description a worker process can
    rebuild the workload from via :func:`workload_from_spec`) and may
    refine :meth:`estimate_cost` (the scheduler's per-shard yield
    estimate).
    """

    def __len__(self) -> int:
        """Total number of configurations in the workload."""
        raise NotImplementedError

    def generate(self, start: int, stop: int) -> Iterator[Configuration]:
        """Yield the configurations at flat positions ``start .. stop-1``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable label for logs and checkpoints."""
        return f"{type(self).__name__}({len(self)} configs)"

    def estimate_cost(self, start: int, stop: int) -> float:
        """Cheap static cost estimate for the item range ``[start, stop)``.

        Feeds the queue scheduler's expected-yield ranking
        (:mod:`repro.engine.scheduler`); must *never* generate the
        configurations (estimation runs over the whole workload at
        enqueue time). The default — item count — is always safe;
        parametric workloads override it with a classification-shaped
        estimate (~n³ per item) so mixed-size workloads front-load
        their expensive shards. Only the *relative* ordering matters.
        """
        return float(max(0, min(stop, len(self)) - start))

    def to_spec(self) -> Dict:
        """JSON-able description a worker can rebuild this workload from.

        The inverse is :func:`workload_from_spec`; the round-trip must
        reproduce the exact item sequence (it is how queue workers in
        other processes regenerate shard contents). Workloads without a
        spec cannot run distributed.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support distributed execution "
            "(no to_spec); register one via register_workload_kind"
        )

    def __iter__(self) -> Iterator[Configuration]:
        """Iterate the full workload in order."""
        return self.generate(0, len(self))


class RandomGnpWorkload(Workload):
    """Seeded random connected G(n, p) configurations with uniform tags.

    Item order and seeding match
    :func:`repro.analysis.census.random_census` exactly — ``samples``
    configurations per entry of ``n_values``, n-major — so an engine
    census over this workload is comparable row-for-row with the serial
    path.
    """

    def __init__(
        self,
        n_values: Sequence[int],
        span: int,
        p: float,
        samples: int,
        seed: int,
    ) -> None:
        self.n_values = list(n_values)
        self.span = span
        self.p = p
        self.samples = samples
        self.seed = seed

    def __len__(self) -> int:
        """``len(n_values) * samples``."""
        return len(self.n_values) * self.samples

    def _item(self, index: int) -> Configuration:
        n = self.n_values[index // self.samples]
        s = index % self.samples
        base = self.seed + 7919 * s + 104729 * n
        edges = random_connected_gnp_edges(n, self.p, base)
        tags = uniform_random(range(n), self.span, base + 1)
        return build(edges, tags, n=n)

    def generate(self, start: int, stop: int) -> Iterator[Configuration]:
        """Regenerate items ``start .. stop-1`` from their seeds."""
        for i in range(start, min(stop, len(self))):
            yield self._item(i)

    def describe(self) -> str:
        """e.g. ``gnp(n=[6, 8], span=2, p=0.3, 20/n, seed=1)``."""
        return (
            f"gnp(n={self.n_values}, span={self.span}, p={self.p}, "
            f"{self.samples}/n, seed={self.seed})"
        )

    def estimate_cost(self, start: int, stop: int) -> float:
        """~n³ per item, computed from indices alone (n-major layout)."""
        stop = min(stop, len(self))
        return float(
            sum(self.n_values[i // self.samples] ** 3 for i in range(start, stop))
        )

    def to_spec(self) -> Dict:
        """``{"kind": "gnp", ...}`` — the constructor parameters."""
        return {
            "kind": "gnp",
            "n_values": list(self.n_values),
            "span": self.span,
            "p": self.p,
            "samples": self.samples,
            "seed": self.seed,
        }


class EnumerationWorkload(Workload):
    """Every configuration with ``n`` nodes and tags ``0..max_tag``.

    Wraps :func:`repro.graphs.enumeration.enumerate_configurations`;
    slicing re-enumerates from the start and skips (enumeration order is
    deterministic), trading CPU for the bounded memory the pipeline
    needs. Fine at the small n where exhaustive censuses are feasible.
    """

    def __init__(self, n: int, max_tag: int, *, labeled: bool = False) -> None:
        from ..graphs.enumeration import count_configurations

        self.n = n
        self.max_tag = max_tag
        self.labeled = labeled
        self._count = count_configurations(n, max_tag, labeled=labeled)

    def __len__(self) -> int:
        """:func:`repro.graphs.enumeration.count_configurations`."""
        return self._count

    def generate(self, start: int, stop: int) -> Iterator[Configuration]:
        """Re-enumerate deterministically and yield positions start..stop-1."""
        from ..graphs.enumeration import enumerate_configurations

        it = enumerate_configurations(self.n, self.max_tag, labeled=self.labeled)
        return islice(it, start, min(stop, self._count))

    def describe(self) -> str:
        """e.g. ``enum(n=4, tags 0..1)`` (``labeled`` noted when set)."""
        suffix = ", labeled" if self.labeled else ""
        return f"enum(n={self.n}, tags 0..{self.max_tag}{suffix})"

    def estimate_cost(self, start: int, stop: int) -> float:
        """~n³ per item (every item has the same size here)."""
        stop = min(stop, len(self))
        return float(max(0, stop - start) * self.n**3)

    def to_spec(self) -> Dict:
        """``{"kind": "enum", ...}`` — the constructor parameters."""
        return {
            "kind": "enum",
            "n": self.n,
            "max_tag": self.max_tag,
            "labeled": self.labeled,
        }


class SequenceWorkload(Workload):
    """An in-memory configuration sequence (already materialized)."""

    def __init__(
        self, configs: Iterable[Configuration], *, label: Optional[str] = None
    ) -> None:
        self.configs = list(configs)
        self.label = label
        self._digest: Optional[str] = None

    def __len__(self) -> int:
        """Number of stored configurations."""
        return len(self.configs)

    def generate(self, start: int, stop: int) -> Iterator[Configuration]:
        """Yield the stored slice."""
        return iter(self.configs[start:stop])

    def describe(self) -> str:
        """Label (if given) plus a content digest.

        Unlike the seeded workloads, a sequence is not identified by its
        parameters, so the description digests the exact labeled
        structure of every member — two different populations of the
        same size can never fingerprint alike, which is what checkpoint
        validation relies on. Computed once and memoized.
        """
        if self._digest is None:
            import hashlib

            from .keys import labeled_key

            h = hashlib.sha256()
            for cfg in self.configs:
                h.update(labeled_key(cfg).encode("ascii"))
            self._digest = h.hexdigest()[:16]
        name = self.label or "sequence"
        return f"{name}({len(self)} configs, {self._digest})"

    def estimate_cost(self, start: int, stop: int) -> float:
        """~n³ per stored item (the members are already materialized)."""
        return float(sum(c.n**3 for c in self.configs[start:stop]))

    def to_spec(self) -> Dict:
        """``{"kind": "sequence", ...}`` — every member, fully labeled.

        Node labels must be JSON scalars (ints or strings) so the
        round-trip through a queue file reproduces the exact
        configurations; richer labels raise ``TypeError``.
        """
        configs = []
        for cfg in self.configs:
            for v in cfg.nodes:
                if not isinstance(v, (int, str)) or isinstance(v, bool):
                    raise TypeError(
                        f"node label {v!r} is not JSON-stable; distributed "
                        "sequence workloads need int or str node names"
                    )
            configs.append(
                {
                    "tags": [[v, cfg.tag(v)] for v in cfg.nodes],
                    "edges": [list(e) for e in cfg.edges],
                }
            )
        return {"kind": "sequence", "label": self.label, "configs": configs}


def _sequence_from_spec(spec: Dict) -> "SequenceWorkload":
    """Rebuild a :class:`SequenceWorkload` from its spec dict."""
    configs = [
        Configuration(
            edges=[tuple(e) for e in item["edges"]],
            tags={v: t for v, t in item["tags"]},
        )
        for item in spec["configs"]
    ]
    return SequenceWorkload(configs, label=spec.get("label"))


#: Spec ``kind`` -> factory rebuilding the workload from its spec dict.
WORKLOAD_KINDS: Dict[str, Callable[[Dict], Workload]] = {
    "gnp": lambda spec: RandomGnpWorkload(
        spec["n_values"], spec["span"], spec["p"], spec["samples"], spec["seed"]
    ),
    "enum": lambda spec: EnumerationWorkload(
        spec["n"], spec["max_tag"], labeled=spec.get("labeled", False)
    ),
    "sequence": _sequence_from_spec,
}


def register_workload_kind(
    kind: str, factory: Callable[[Dict], Workload]
) -> None:
    """Register a custom spec kind for distributed execution.

    ``factory`` receives the full spec dict and returns the workload.
    Worker processes must register the same kind before attaching to a
    queue that uses it (e.g. at the top of the module they are launched
    from).
    """
    WORKLOAD_KINDS[kind] = factory


def workload_from_spec(spec: Dict) -> Workload:
    """Rebuild a workload from a :meth:`Workload.to_spec` dict.

    The queue stores the spec at creation; every worker calls this to
    regenerate shard contents locally. Unknown kinds raise ``KeyError``
    naming the kind (register it via :func:`register_workload_kind`).
    """
    kind = spec.get("kind")
    if kind not in WORKLOAD_KINDS:
        raise KeyError(
            f"unknown workload kind {kind!r}; registered: "
            f"{sorted(WORKLOAD_KINDS)}"
        )
    return WORKLOAD_KINDS[kind](spec)


def as_workload(obj) -> Workload:
    """Coerce a Workload, sequence, or iterable of configurations."""
    if isinstance(obj, Workload):
        return obj
    return SequenceWorkload(obj)
