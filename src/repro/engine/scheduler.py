"""Yield-priority shard scheduling for the distributed work queue.

FIFO is the wrong order for a cold census: shard costs are heavily
skewed (classification is ~O(n³Δ), so the large-n shards of a mixed
workload dominate the wall clock), and whichever expensive shard runs
*last* sets the critical path of the whole run. The scheduler ranks
pending shards by **expected yield** — the classification work a shard
is expected to actually perform::

    expected_yield(shard) = cost(shard) * miss_rate

where ``cost`` is the workload's static per-shard cost estimate
(:meth:`repro.engine.workloads.Workload.estimate_cost`, enumerated once
by the coordinator) and ``miss_rate`` is the *observed* cache-miss rate
of the shards committed so far (1.0 while the queue is cold). Leasing
the highest-yield shard first front-loads the expensive cold work, so
the tail of the run is short cheap shards instead of one giant one.

Two refinements keep the policy honest:

* **Aging** — every second a shard waits adds
  ``max_cost / aging_horizon`` to its score, so a starved cheap shard
  outranks even the most expensive fresh shard after at most
  ``aging_horizon`` seconds (the aging bonus then equals the largest
  *cold* cost in the pool, which bounds every expected yield). No shard
  waits forever behind a stream of newly reclaimed expensive work.
* **Warm convergence to FIFO** — as the cache warms up the observed
  miss rate falls and every expected yield shrinks proportionally,
  while the aging term is deliberately scaled by *cold* cost, not
  yield: on a warm queue age dominates and the order degrades
  gracefully to oldest-first, which is optimal when every shard is
  nearly free.

Everything here is pure functions over plain values — the module knows
nothing about SQLite — so the policy is unit-testable without a queue
and swappable without touching storage (:mod:`repro.engine.queue` calls
:func:`rank` inside its lease transaction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

#: Seconds of queue age after which a starved shard outranks the most
#: expensive fresh shard (the aging horizon; see :func:`rank`).
DEFAULT_AGING_HORIZON = 300.0

#: Floor on the observed miss rate: even a fully warm queue keeps a
#: sliver of cost-ordering so identical-age shards still break ties by
#: expected work instead of degenerating to pure insertion order.
MIN_MISS_RATE = 0.01


@dataclass(frozen=True)
class ShardCandidate:
    """What the scheduler needs to know about one pending shard.

    ``cost`` is the workload's static cost estimate for the shard's item
    range; ``enqueued_at`` is the wall-clock time the shard (re)entered
    the pending state — a reclaimed shard keeps its original enqueue
    time, so retries inherit the age they already accumulated.
    """

    index: int
    cost: float
    enqueued_at: float


def expected_yield(cost: float, miss_rate: float) -> float:
    """Classification work a shard is expected to perform.

    ``cost * miss_rate``, with ``miss_rate`` floored at
    :data:`MIN_MISS_RATE` so a fully warm cache never erases cost
    ordering entirely.
    """
    return cost * max(miss_rate, MIN_MISS_RATE)


def score(
    candidate: ShardCandidate,
    now: float,
    *,
    miss_rate: float = 1.0,
    age_weight: float = 0.0,
) -> float:
    """A shard's priority: expected yield plus an aging bonus.

    ``age_weight`` is yield-units per second of queue age; callers
    normally let :func:`rank` derive it from the candidate pool and the
    aging horizon instead of picking a constant.
    """
    age = max(0.0, now - candidate.enqueued_at)
    return expected_yield(candidate.cost, miss_rate) + age_weight * age


def rank(
    candidates: Iterable[ShardCandidate],
    now: float,
    *,
    miss_rate: float = 1.0,
    aging_horizon: float = DEFAULT_AGING_HORIZON,
) -> List[ShardCandidate]:
    """Pending shards in lease order: best expected yield first.

    The aging weight is self-scaling: it is chosen so that
    ``aging_horizon`` seconds of waiting are worth exactly the largest
    *cold* cost in the pool (an upper bound on every expected yield),
    guaranteeing starvation-freedom without a hand-tuned constant
    (shard costs differ by orders of magnitude between workloads).
    Scaling by cost rather than yield is what makes a warm queue
    converge to oldest-first: the yield term shrinks with the miss rate
    but the aging term does not. Ties break on lower shard index, so
    the order is fully deterministic for a given candidate pool and
    clock.
    """
    pool = list(candidates)
    if not pool:
        return []
    if aging_horizon <= 0:
        raise ValueError("aging_horizon must be > 0")
    top = max(c.cost for c in pool)
    age_weight = top / aging_horizon if top > 0 else 1.0 / aging_horizon
    return sorted(
        pool,
        key=lambda c: (
            -score(c, now, miss_rate=miss_rate, age_weight=age_weight),
            c.index,
        ),
    )


def observed_miss_rate(
    shard_stats: Sequence[Dict[str, object]],
) -> Optional[float]:
    """Pooled cache-miss rate of the shards committed so far.

    Each committed shard stores its engine accounting
    (``{"classified": ..., "cache_hits": ..., "deduped": ...}``); the
    pooled rate is fresh classifications over total items. Returns
    ``None`` (meaning: assume cold, use 1.0) until at least one
    committed shard carries usable counters.
    """
    classified = 0
    total = 0
    for stats in shard_stats:
        try:
            c = int(stats.get("classified", 0))  # type: ignore[union-attr]
            h = int(stats.get("cache_hits", 0))  # type: ignore[union-attr]
            d = int(stats.get("deduped", 0))  # type: ignore[union-attr]
        except (AttributeError, TypeError, ValueError):
            continue
        classified += c
        total += c + h + d
    if total <= 0:
        return None
    return classified / total
