"""Census engine: canonical-form memoization + sharded parallel pipeline.

The engine turns the library's feasibility censuses (E1, E11, E14, E15)
from throwaway sweeps into accumulating, resumable artifacts:

* :mod:`repro.engine.keys` — canonical keys that collapse tag-preserving
  isomorphic configurations to one cache entry, at any size, via the
  refinement canonizer (:mod:`repro.canon`);
* :mod:`repro.engine.cache` — an in-memory LRU with an optional
  append-only JSONL store, so repeated and resumed censuses are
  near-free;
* :mod:`repro.engine.workloads` — deterministic, slice-regenerable
  workload descriptions (random G(n, p) sweeps, exhaustive
  enumerations) that shards can regenerate without materializing the
  population;
* :mod:`repro.engine.pipeline` — the sharded census runner layered on
  :mod:`repro.analysis.parallel`, with per-shard checkpoints and
  bit-for-bit equality with the serial
  :func:`repro.analysis.census.census` path;
* :mod:`repro.engine.queue` + :mod:`repro.engine.scheduler` — the
  distributed path: a durable SQLite work queue that N independent
  worker processes drain under lease/heartbeat semantics, with pending
  shards ranked by expected classification yield (see
  ``docs/distributed.md``).

Quickstart::

    >>> from repro.engine import RandomGnpWorkload, ResultCache, sharded_census
    >>> workload = RandomGnpWorkload([6, 8], span=2, p=0.3, samples=10, seed=1)
    >>> cache = ResultCache()                      # add path=... to persist
    >>> run = sharded_census(workload, num_shards=4, cache=cache)
    >>> run.result.total
    20
    >>> rerun = sharded_census(workload, num_shards=4, cache=cache)
    >>> rerun.stats.classified                     # second run: all cache hits
    0
"""

from .cache import CacheStats, ResultCache
from .keys import (
    Keyer,
    canonical_key,
    certificate_key,
    default_keyer,
    labeled_key,
)
from .pipeline import (
    GROUPINGS,
    CensusRun,
    EngineStats,
    ShardSpec,
    batch_records,
    cached_evaluate,
    census_record,
    census_queue_worker,
    collect_census_queue,
    create_census_queue,
    distributed_census,
    group_by_n_span,
    plan_shards,
    record_sufficient,
    register_grouping,
    sharded_census,
)
from .queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    Lease,
    QueueError,
    WorkQueue,
    default_owner,
    heartbeat_guard,
)
from .scheduler import (
    ShardCandidate,
    expected_yield,
    observed_miss_rate,
    rank,
)
from .workloads import (
    EnumerationWorkload,
    RandomGnpWorkload,
    SequenceWorkload,
    Workload,
    as_workload,
    feasible_batch,
    make_random_config,
    random_config_batch,
    register_workload_kind,
    seeded_config,
    workload_from_spec,
)

__all__ = [
    "CacheStats",
    "CensusRun",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "EngineStats",
    "EnumerationWorkload",
    "GROUPINGS",
    "Keyer",
    "Lease",
    "QueueError",
    "RandomGnpWorkload",
    "ResultCache",
    "SequenceWorkload",
    "ShardCandidate",
    "ShardSpec",
    "WorkQueue",
    "Workload",
    "as_workload",
    "batch_records",
    "cached_evaluate",
    "canonical_key",
    "census_queue_worker",
    "census_record",
    "certificate_key",
    "collect_census_queue",
    "create_census_queue",
    "default_keyer",
    "default_owner",
    "distributed_census",
    "expected_yield",
    "feasible_batch",
    "group_by_n_span",
    "heartbeat_guard",
    "labeled_key",
    "make_random_config",
    "observed_miss_rate",
    "plan_shards",
    "random_config_batch",
    "rank",
    "record_sufficient",
    "register_grouping",
    "register_workload_kind",
    "seeded_config",
    "sharded_census",
    "workload_from_spec",
]
