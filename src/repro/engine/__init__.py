"""Census engine: canonical-form memoization + sharded parallel pipeline.

The engine turns the library's feasibility censuses (E1, E11, E14, E15)
from throwaway sweeps into accumulating, resumable artifacts:

* :mod:`repro.engine.keys` — canonical keys that collapse tag-preserving
  isomorphic configurations to one cache entry, at any size, via the
  refinement canonizer (:mod:`repro.canon`);
* :mod:`repro.engine.cache` — an in-memory LRU with an optional
  append-only JSONL store, so repeated and resumed censuses are
  near-free;
* :mod:`repro.engine.workloads` — deterministic, slice-regenerable
  workload descriptions (random G(n, p) sweeps, exhaustive
  enumerations) that shards can regenerate without materializing the
  population;
* :mod:`repro.engine.pipeline` — the sharded census runner layered on
  :mod:`repro.analysis.parallel`, with per-shard checkpoints and
  bit-for-bit equality with the serial
  :func:`repro.analysis.census.census` path.

Quickstart::

    >>> from repro.engine import RandomGnpWorkload, ResultCache, sharded_census
    >>> workload = RandomGnpWorkload([6, 8], span=2, p=0.3, samples=10, seed=1)
    >>> cache = ResultCache()                      # add path=... to persist
    >>> run = sharded_census(workload, num_shards=4, cache=cache)
    >>> run.result.total
    20
    >>> rerun = sharded_census(workload, num_shards=4, cache=cache)
    >>> rerun.stats.classified                     # second run: all cache hits
    0
"""

from .cache import CacheStats, ResultCache
from .keys import (
    Keyer,
    canonical_key,
    certificate_key,
    default_keyer,
    labeled_key,
)
from .pipeline import (
    CensusRun,
    EngineStats,
    ShardSpec,
    batch_records,
    cached_evaluate,
    census_record,
    plan_shards,
    record_sufficient,
    sharded_census,
)
from .workloads import (
    EnumerationWorkload,
    RandomGnpWorkload,
    SequenceWorkload,
    Workload,
    as_workload,
    feasible_batch,
    make_random_config,
    random_config_batch,
    seeded_config,
)

__all__ = [
    "CacheStats",
    "CensusRun",
    "EngineStats",
    "EnumerationWorkload",
    "Keyer",
    "RandomGnpWorkload",
    "ResultCache",
    "SequenceWorkload",
    "ShardSpec",
    "Workload",
    "as_workload",
    "batch_records",
    "cached_evaluate",
    "canonical_key",
    "census_record",
    "certificate_key",
    "default_keyer",
    "feasible_batch",
    "labeled_key",
    "make_random_config",
    "plan_shards",
    "random_config_batch",
    "record_sufficient",
    "seeded_config",
    "sharded_census",
]
