"""Classification result cache: in-memory LRU plus optional JSONL store.

The cache maps canonical keys (:mod:`repro.engine.keys`) to small
JSON-serializable record dicts holding isomorphism-invariant
classification facts. For the census pipeline the record shape is::

    {"feasible": bool, "iterations": int, "rounds": int | None}

but the cache itself is record-agnostic, so other evaluators (e.g. the
cross-model verdicts of E11 or the wired contrast of E14) can reuse it —
one cache instance (and one disk file) per evaluator, since keys carry no
evaluator namespace.

Persistence is append-only JSON lines: one ``{"key": ..., "record": ...}``
object per line. Appending is crash-tolerant (a truncated final line is
ignored on load), re-opening a file replays it into memory, and two runs
appending the same key are harmless — the last line wins. This is what
makes repeated and resumed censuses near-free: the second run's lookups
hit either the LRU or the replayed file and skip classification entirely.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..obs.runtime import STATE as _OBS
from ..obs.runtime import registry as _registry


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    loaded: int = 0  #: entries replayed from the on-disk store at open
    compacted: int = 0  #: superseded JSONL lines dropped by :meth:`ResultCache.compact`

    @property
    def lookups(self) -> int:
        """Total number of :meth:`ResultCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict:
        """JSON-ready counter dict (census ``--stats`` and service
        response ``meta`` print/ship exactly this)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "loaded": self.loaded,
            "compacted": self.compacted,
        }


class ResultCache:
    """LRU cache of classification records, optionally JSONL-backed.

    Parameters
    ----------
    path:
        optional JSON-lines file. Existing entries are replayed into
        memory on construction; every :meth:`put` appends one line.
    max_entries:
        in-memory LRU capacity; ``None`` means unbounded. Eviction only
        drops the in-memory copy — evicted entries persist on disk and
        are *not* transparently reloaded (the engine treats the file as
        a replay log, not a random-access store).
    """

    def __init__(
        self, path: Optional[str] = None, *, max_entries: Optional[int] = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.path = path
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Dict]" = OrderedDict()
        self._fd: Optional[int] = None  #: lazily-opened O_APPEND store fd
        if path and os.path.exists(path):
            self._replay(path)

    def _replay(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated trailing line from a crashed run
                if isinstance(obj, dict) and "key" in obj and "record" in obj:
                    self._store(obj["key"], obj["record"])
        self.stats.loaded = len(self._entries)

    def _store(self, key: str, record: Dict) -> None:
        if key in self._entries:
            self._entries.pop(key)
        self._entries[key] = record
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        """Number of in-memory entries."""
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership test that does not touch the stats counters."""
        return key in self._entries

    def peek(self, key: str) -> Optional[Dict]:
        """The record for ``key`` without touching LRU order or stats."""
        return self._entries.get(key)

    def get(self, key: str) -> Optional[Dict]:
        """The record for ``key``, refreshing its LRU position; None on miss."""
        record = self._entries.get(key)
        if record is None:
            self.stats.misses += 1
            if _OBS.enabled:  # per-lookup: guarded, one attribute check
                _registry.inc("cache.misses")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if _OBS.enabled:
            _registry.inc("cache.hits")
        return record

    def put(self, key: str, record: Dict) -> None:
        """Insert (or overwrite) a record; appends to the JSONL store.

        Each record is appended as exactly one ``write(2)`` on an
        ``O_APPEND`` descriptor, so concurrent writers — e.g. the worker
        processes of a distributed census sharing one cache file — never
        interleave inside a line: the kernel serializes whole-line
        appends, and records are deterministic, so whichever duplicate
        lands last is bit-for-bit the same. A crash mid-write leaves at
        most one truncated trailing line (which :meth:`_replay` skips).
        """
        self._store(key, record)
        if _OBS.enabled:
            _registry.inc("cache.puts")
        if self.path:
            if self._fd is None:
                self._fd = os.open(
                    self.path,
                    os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                    0o644,
                )
            line = (
                json.dumps(
                    {"key": key, "record": record},
                    separators=(",", ":"),
                    sort_keys=True,
                )
                + "\n"
            )
            os.write(self._fd, line.encode("utf-8"))

    def compact(self) -> int:
        """Atomically rewrite the JSONL store, dropping superseded lines.

        The append-only store accumulates one line per :meth:`put`, so a
        key overwritten k times (the census "rounds upgrade", repeated
        runs appending the same population) occupies k lines of which
        only the last matters. Compaction replays the *file* (not the
        in-memory LRU, which may have evicted entries the disk still
        holds), writes one line per live key — in first-appearance
        order, each with its last-written record — to a temp file, and
        atomically replaces the store (``os.replace``), so a crash
        mid-compaction leaves the original intact. Unparseable lines
        (crashed half-appends) are dropped too.

        Returns the number of lines dropped (also accumulated in
        ``stats.compacted``). A cache with no store is a no-op.
        """
        if not self.path or not os.path.exists(self.path):
            return 0
        live: "OrderedDict[str, Dict]" = OrderedDict()
        lines = 0
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                if not line.strip():
                    continue
                lines += 1
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(obj, dict) and "key" in obj and "record" in obj:
                    # dict insertion order keeps first appearance, the
                    # overwrite keeps the last record — exactly replay's
                    # last-line-wins semantics
                    live[obj["key"]] = obj["record"]
        self.close()  # the stale append handle must not outlive the rewrite
        # per-pid temp name: two processes compacting the same store race
        # on the rename (last one wins, both outcomes valid), never on
        # the temp file's contents
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            for key, record in live.items():
                fh.write(
                    json.dumps(
                        {"key": key, "record": record},
                        separators=(",", ":"),
                        sort_keys=True,
                    )
                    + "\n"
                )
        os.replace(tmp, self.path)
        dropped = lines - len(live)
        self.stats.compacted += dropped
        return dropped

    def close(self) -> None:
        """Close the JSONL store descriptor (reopened lazily on next put)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __del__(self):
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter-shutdown noise
            pass

    def describe(self) -> str:
        """One-line human summary (used by the CLI's stats footer)."""
        s = self.stats
        return (
            f"cache: {len(self)} entries, {s.hits} hits / {s.misses} misses "
            f"(hit rate {s.hit_rate:.1%})"
            + (f", {s.loaded} loaded from {self.path}" if self.path else "")
        )
