"""Canonical-form keying for the census engine.

Census workloads are full of isomorphic duplicates: a random G(n, p)
sweep regenerates the same small tagged graphs under different node
labelings, and every classifier-relevant quantity (feasibility, the
refinement iteration count, the dedicated election round count) is
invariant under tag-preserving isomorphism. Keying cache entries by a
canonical form therefore lets the engine classify each isomorphism class
exactly once.

Three keyers are provided:

* :func:`canonical_key` — a digest of
  :func:`repro.analysis.isomorphism.canonical_form`; equal for two
  configurations iff they are tag-preserving isomorphic (after
  :meth:`~repro.core.configuration.Configuration.normalize`). This is
  the engine default at **every** size: the refinement-based canonizer
  (:mod:`repro.canon`) replaced the brute-force enumeration that used
  to cap canonical keying at n = 10, and a configuration-equality memo
  makes repeat keying of warm traffic O(n + m).
* :func:`certificate_key` — a digest of the 1-WL refinement
  certificate (:func:`repro.canon.certificate_key` re-exported):
  near-linear, collapses relabelings and everything 1-WL can prove
  equivalent, but may merge distinct isomorphism classes the exact key
  separates. An escape hatch for adversarially symmetric populations
  where even the searched canonization is too slow.
* :func:`labeled_key` — a digest of the exact labeled structure, with no
  isomorphism collapse. O(n + m); use it when the population is already
  deduplicated.

Correctness never depends on which keyer runs — a weaker keyer only
means fewer cache hits (``certificate_key`` is the one exception: it
may *over*-collapse 1-WL-equivalent non-isomorphic configurations, so
it is opt-in and never the default).

Keys are short hex strings so they serialize verbatim into the JSONL
cache (:mod:`repro.engine.cache`) and shard checkpoints.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable

from ..analysis.isomorphism import canonical_form
from ..canon import certificate_key as _certificate_key
from ..core.configuration import Configuration

#: Signature of a keyer: configuration -> stable string key.
Keyer = Callable[[Configuration], str]


def _digest(payload: object) -> str:
    """Stable short hex digest of a JSON-serializable payload."""
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def canonical_key(cfg: Configuration) -> str:
    """Key equal for two configurations iff they are isomorphic.

    The key digests the lexicographically minimal relabeled
    ``(n, tag vector, edge set)`` of the normalized configuration, so
    relabeled and tag-shifted copies of the same network collapse to one
    cache entry — at any n, via :mod:`repro.canon`.
    """
    n, tagvec, edges = canonical_form(cfg)
    return _digest([n, list(tagvec), [list(e) for e in edges]])


def certificate_key(cfg: Configuration) -> str:
    """Near-linear 1-WL certificate key (may over-collapse; opt-in).

    Re-exported from :func:`repro.canon.certificate_key` so engine
    callers can pick it as a ``keyer`` without importing the canon
    package directly.
    """
    return _certificate_key(cfg)


def default_keyer(cfg: Configuration) -> str:
    """The engine's default keyer: canonical at every size.

    Historically this switched to :func:`labeled_key` above
    ``CANONICAL_N_LIMIT = 10`` because brute-force canonization is
    exponential; the refinement canonizer removed the ceiling, so
    isomorphic duplicates now collapse at any n and the constant is
    gone. (The canonizer's worst case is still exponential on
    pathologically symmetric regular graphs — pick
    :func:`certificate_key` or :func:`labeled_key` explicitly if a
    workload ever lives there.)
    """
    return canonical_key(cfg)


def labeled_key(cfg: Configuration) -> str:
    """Exact-structure key: no isomorphism collapse, linear time.

    Tag shifts are still collapsed (the configuration is normalized
    first) because shifted configurations are operationally identical.
    """
    cfg = cfg.normalize()
    return _digest(
        [
            cfg.n,
            [[v, cfg.tag(v)] for v in cfg.nodes],
            [list(e) for e in cfg.edges],
        ]
    )
