"""Canonical-form keying for the census engine.

Census workloads are full of isomorphic duplicates: a random G(n, p)
sweep regenerates the same small tagged graphs under different node
labelings, and every classifier-relevant quantity (feasibility, the
refinement iteration count, the dedicated election round count) is
invariant under tag-preserving isomorphism. Keying cache entries by a
canonical form therefore lets the engine classify each isomorphism class
exactly once.

Two keyers are provided:

* :func:`canonical_key` — a digest of
  :func:`repro.analysis.isomorphism.canonical_form`; equal for two
  configurations iff they are tag-preserving isomorphic (after
  :meth:`~repro.core.configuration.Configuration.normalize`). This is the
  engine default. Canonicalization is exponential in the worst case but
  profile-pruned; census-scale configurations (n ≲ 10) key in
  microseconds-to-milliseconds.
* :func:`labeled_key` — a digest of the exact labeled structure, with no
  isomorphism collapse. O(n + m); use it when the population is already
  deduplicated or when n is too large to canonicalize.

Keys are short hex strings so they serialize verbatim into the JSONL
cache (:mod:`repro.engine.cache`) and shard checkpoints.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable

from ..analysis.isomorphism import canonical_form
from ..core.configuration import Configuration

#: Signature of a keyer: configuration -> stable string key.
Keyer = Callable[[Configuration], str]


def _digest(payload: object) -> str:
    """Stable short hex digest of a JSON-serializable payload."""
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def canonical_key(cfg: Configuration) -> str:
    """Key equal for two configurations iff they are isomorphic.

    The key digests the lexicographically minimal relabeled
    ``(n, tag vector, edge set)`` of the normalized configuration, so
    relabeled and tag-shifted copies of the same network collapse to one
    cache entry.
    """
    n, tagvec, edges = canonical_form(cfg)
    return _digest([n, list(tagvec), [list(e) for e in edges]])


#: Largest n for which :func:`default_keyer` pays the canonicalization
#: cost; beyond it the exponential worst case stops being hypothetical.
CANONICAL_N_LIMIT = 10


def default_keyer(cfg: Configuration) -> str:
    """Size-aware keyer: canonical up to :data:`CANONICAL_N_LIMIT`, labeled
    beyond it.

    Small configurations — where isomorphic duplicates are common and
    canonicalization is cheap — get full isomorphism collapse; large ones
    fall back to the linear-time exact key (duplicates there are rare
    anyway, and correctness never depends on which keyer runs).
    """
    if cfg.n <= CANONICAL_N_LIMIT:
        return canonical_key(cfg)
    return labeled_key(cfg)


def labeled_key(cfg: Configuration) -> str:
    """Exact-structure key: no isomorphism collapse, linear time.

    Tag shifts are still collapsed (the configuration is normalized
    first) because shifted configurations are operationally identical.
    """
    cfg = cfg.normalize()
    return _digest(
        [
            cfg.n,
            [[v, cfg.tag(v)] for v in cfg.nodes],
            [list(e) for e in cfg.edges],
        ]
    )
