"""Sharded, cached, resumable census pipeline.

The pipeline splits a :class:`~repro.engine.workloads.Workload` into
deterministic contiguous shards, classifies each shard through the
canonical-form cache (misses optionally fanned out over
:func:`repro.analysis.parallel.parallel_map`), and streams only the
*aggregated* per-shard rows to the merger — memory is bounded by one
shard plus the row table, never by the population size.

Guarantees:

* **Equality** — for any shard count, worker count, and cache state, the
  merged :class:`~repro.analysis.census.CensusResult` equals what the
  serial :func:`repro.analysis.census.census` produces on the same
  workload, row for row. This holds because every cached quantity
  (feasibility, refinement iterations, election rounds) is invariant
  under the tag-preserving isomorphisms the canonical key collapses.
* **Resume** — with a ``checkpoint_dir``, each finished shard writes an
  atomic JSON checkpoint; a re-run loads matching checkpoints instead of
  recomputing, so an interrupted census continues where it stopped and a
  completed one replays instantly.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.census import CensusResult, CensusRow, group_by_n
from ..analysis.parallel import parallel_map
from ..core.classifier import classify
from ..core.configuration import Configuration
from ..core.election import elect_leader
from ..obs.runtime import STATE as _OBS
from ..obs.runtime import event as _obs_event
from ..obs.runtime import registry as _registry
from ..obs.runtime import span as _obs_span
from .cache import ResultCache
from .keys import Keyer, default_keyer
from .queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    QueueError,
    WorkQueue,
    default_owner,
    heartbeat_guard,
)
from .workloads import Workload, as_workload, workload_from_spec

#: Default grouping, matching :func:`repro.analysis.census.census`.
GroupBy = Callable[[Configuration], object]

_CHECKPOINT_VERSION = 1


def group_by_n_span(config: Configuration) -> Tuple[int, int]:
    """The default census grouping, ``(n, span)``, as a named function.

    Distributed runs identify groupings by *name* (a worker process
    cannot deserialize a lambda), so the default grouping needs a
    stable, registered definition site. See :data:`GROUPINGS`.
    """
    return (config.n, config.span)


#: Named groupings a distributed census can ship through its queue.
GROUPINGS: Dict[str, GroupBy] = {
    "n_span": group_by_n_span,
    "n": group_by_n,
}


def register_grouping(name: str, group_by: GroupBy) -> None:
    """Register a grouping for distributed runs under a stable name.

    Worker processes must register the same name before attaching to a
    queue that uses it.
    """
    GROUPINGS[name] = group_by


def _grouping_name(group_by: Optional[GroupBy]) -> str:
    """The registered name for a grouping callable (None -> default).

    Unregistered callables cannot cross a process boundary, so they are
    rejected with a pointer at :func:`register_grouping`.
    """
    if group_by is None:
        return "n_span"
    for name, fn in GROUPINGS.items():
        if fn is group_by:
            return name
    raise ValueError(
        "distributed censuses need a registered grouping "
        "(register_grouping(name, fn)); got an unregistered callable"
    )


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard: the half-open item range ``[start, stop)`` of a workload."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of workload items in the shard."""
        return self.stop - self.start


def plan_shards(total: int, num_shards: int) -> List[ShardSpec]:
    """Split ``total`` items into ``num_shards`` balanced contiguous shards.

    Deterministic: shard sizes differ by at most one, larger shards
    first. Empty shards are dropped, so asking for more shards than
    items is harmless.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    base, extra = divmod(total, num_shards)
    shards: List[ShardSpec] = []
    start = 0
    for i in range(num_shards):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        shards.append(ShardSpec(index=i, start=start, stop=start + size))
        start += size
    return shards


# ----------------------------------------------------------------------
# classification records
# ----------------------------------------------------------------------
def census_record(
    cfg: Configuration,
    measure_rounds: bool = False,
    algorithm: str = "auto",
) -> Dict:
    """Isomorphism-invariant classification record for one configuration.

    The record carries exactly what census aggregation needs: the
    feasibility verdict, the classifier iteration count, and (when
    ``measure_rounds``) the dedicated election round count for feasible
    configurations. Node identities (e.g. the leader) are deliberately
    excluded — they are not isomorphism-invariant. ``algorithm`` picks
    the classifier implementation (record values are identical for
    every choice, so records cached under different knobs interoperate).
    """
    trace = classify(cfg, algorithm=algorithm)
    rounds: Optional[int] = None
    if measure_rounds and trace.feasible:
        rounds = elect_leader(trace.config, trace=trace).rounds
    return {
        "feasible": trace.feasible,
        "iterations": trace.num_iterations,
        "rounds": rounds,
    }


def record_sufficient(record: Optional[Dict], measure_rounds: bool) -> bool:
    """Whether a cached record answers a census/service question.

    A record missing the census fields — e.g. one written by a foreign
    evaluator into a shared cache file, against the one-cache-per-
    evaluator convention — counts as insufficient, so callers reclassify
    and overwrite instead of crashing on it. A record cached without
    election rounds is likewise insufficient for a ``measure_rounds``
    consumer (the "rounds upgrade" path).
    """
    if record is None or "feasible" not in record or "iterations" not in record:
        return False
    if not measure_rounds or not record["feasible"]:
        return True
    return record.get("rounds") is not None


def cached_evaluate(
    cfg: Configuration,
    cache: ResultCache,
    evaluator: Callable[[Configuration], Dict],
    *,
    keyer: Keyer = default_keyer,
) -> Dict:
    """Evaluate ``cfg`` through the cache, keyed up to isomorphism.

    Generic entry point for non-census evaluators (cross-model verdicts,
    wired contrast, ...): ``evaluator`` must return a JSON-serializable
    dict of isomorphism-invariant facts, and one cache instance must be
    dedicated to one evaluator.
    """
    key = keyer(cfg)
    record = cache.get(key)
    if record is None:
        record = evaluator(cfg)
        cache.put(key, record)
    return record


# ----------------------------------------------------------------------
# group-key serialization (census groups are ints / tuples of ints)
# ----------------------------------------------------------------------
def _encode_group(group: object) -> object:
    if isinstance(group, tuple):
        return {"t": [_encode_group(g) for g in group]}
    return {"v": group}


def _decode_group(obj: object) -> object:
    if isinstance(obj, dict) and "t" in obj:
        return tuple(_decode_group(g) for g in obj["t"])
    return obj["v"]


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
@dataclass
class EngineStats:
    """What a census run actually did (the cache/shard accounting)."""

    total_configs: int = 0
    classified: int = 0  #: evaluator calls actually executed
    cache_hits: int = 0  #: items answered from pre-existing records
    deduped: int = 0  #: same-shard isomorphic duplicates of a fresh miss
    shards_total: int = 0
    shards_resumed: int = 0  #: shards replayed from checkpoints

    @property
    def hit_rate(self) -> float:
        """Fraction of items answered without a fresh classification
        (cache hits plus same-shard isomorphism dedup)."""
        return (
            (self.cache_hits + self.deduped) / self.total_configs
            if self.total_configs
            else 0.0
        )

    def as_dict(self) -> Dict:
        """JSON-ready counter dict: hits, collapses (``coalesced``), and
        fresh classifications — the engine half of census ``--stats``
        output and service response ``meta``."""
        return {
            "total_configs": self.total_configs,
            "classified": self.classified,
            "cache_hits": self.cache_hits,
            "coalesced": self.deduped,
            "hit_rate": round(self.hit_rate, 4),
            "shards_total": self.shards_total,
            "shards_resumed": self.shards_resumed,
        }


@dataclass
class CensusRun:
    """A completed engine census: the result plus run accounting."""

    result: CensusResult
    stats: EngineStats = field(default_factory=EngineStats)
    cache: Optional[ResultCache] = None

    def describe(self) -> str:
        """One-line run summary for CLI footers and logs."""
        s = self.stats
        return (
            f"engine: {s.total_configs} configs, {s.classified} classified, "
            f"{s.cache_hits} cache hits, {s.deduped} deduped "
            f"({s.hit_rate:.1%} unclassified), "
            f"{s.shards_total} shard(s), {s.shards_resumed} resumed"
        )


def _shard_rows(result_rows: Dict[object, CensusRow]) -> List[Dict]:
    return [
        {
            "group": _encode_group(row.group),
            "total": row.total,
            "feasible": row.feasible,
            "iterations_sum": row.iterations_sum,
            "rounds_sum": row.rounds_sum,
        }
        for row in result_rows.values()
    ]


def _checkpoint_path(checkpoint_dir: str, shard: ShardSpec) -> str:
    return os.path.join(checkpoint_dir, f"shard-{shard.index:05d}.json")


def _load_checkpoint(
    path: str, shard: ShardSpec, fingerprint: Dict
) -> Optional[List[Dict]]:
    """Shard rows from a checkpoint, or None if absent/stale/mismatched."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            obj = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    expected = {
        "version": _CHECKPOINT_VERSION,
        "shard": shard.index,
        "start": shard.start,
        "stop": shard.stop,
        **fingerprint,
    }
    if any(obj.get(k) != v for k, v in expected.items()):
        return None
    rows = obj.get("rows")
    # a torn/hand-edited file can hold valid JSON of the wrong shape;
    # treat it like a stale checkpoint (recompute) instead of crashing
    if not isinstance(rows, list) or not all(
        isinstance(r, dict) and "group" in r and "total" in r for r in rows
    ):
        return None
    return rows


def _write_checkpoint(
    path: str, shard: ShardSpec, fingerprint: Dict, rows: List[Dict]
) -> None:
    payload = {
        "version": _CHECKPOINT_VERSION,
        "shard": shard.index,
        "start": shard.start,
        "stop": shard.stop,
        **fingerprint,
        "rows": rows,
    }
    # per-pid temp name: concurrent runs sharing a checkpoint dir race
    # on the rename (either file is a complete, valid checkpoint), never
    # on the temp file's contents
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
    os.replace(tmp, path)  # atomic: a crashed run never half-writes


def _merge_rows(result: CensusResult, rows: List[Dict]) -> None:
    for r in rows:
        group = _decode_group(r["group"])
        row = result.rows.setdefault(group, CensusRow(group=group))
        row.total += r["total"]
        row.feasible += r["feasible"]
        row.iterations_sum += r["iterations_sum"]
        row.rounds_sum += r["rounds_sum"]


def _miss_algorithm(algorithm: str, max_workers: Optional[int]) -> str:
    """Implementation for a batch of cache misses (see ``batch_records``).

    Explicit ``"batch"`` always means the vectorized kernel (it runs
    in-process, so a worker-count fan-out request is ignored); ``"auto"``
    means the kernel exactly when it can run and no multiprocessing
    fan-out was requested — ``max_workers`` other than 1 keeps the
    existing :func:`repro.analysis.parallel.parallel_map` behavior.
    """
    if algorithm == "batch":
        return "batch"
    if algorithm == "auto" and max_workers == 1:
        from ..core.batch import resolve_batch_algorithm

        return resolve_batch_algorithm("auto")
    return algorithm


def batch_records(
    configs,
    cache: ResultCache,
    *,
    measure_rounds: bool = False,
    keyer: Keyer = default_keyer,
    precomputed_keys: Optional[Sequence[str]] = None,
    max_workers: Optional[int] = 1,
    chunksize: int = 16,
    stats: Optional[EngineStats] = None,
    algorithm: str = "auto",
) -> List[Dict]:
    """Classification records for a batch, in input order, through the cache.

    This is the engine's batch-lookup hook — the coalescing core shared by
    the sharded census pipeline and the batch classification service
    (:mod:`repro.service`). Each configuration is normalized and keyed
    (:mod:`repro.engine.keys`); duplicate keys inside the batch are
    coalesced to one classification; keys with a sufficient cached record
    are answered without work; the remaining *unique* misses are
    classified via :func:`census_record` — serially, or fanned out over
    :func:`repro.analysis.parallel.parallel_map` — and written back to
    the cache.

    ``configs`` may be any iterable (a list, a workload slice, a
    generator); it is consumed once, one configuration at a time.
    Returns one :func:`census_record`-shaped dict per input configuration
    (cached records are returned by reference; treat them as read-only).
    Record values are deterministic and independent of batch composition,
    cache state, and worker count. When ``stats`` is given, its
    ``cache_hits`` / ``deduped`` / ``classified`` counters are updated
    with this batch's accounting.

    ``precomputed_keys`` skips normalization and keying for callers that
    already paid for both (keying is the expensive step for canonical
    keys): a sequence parallel to ``configs``, whose configurations must
    then already be normalized. The batch classification service uses
    this — requests are keyed once at submit time, never again.

    Miss classification picks its implementation through
    :func:`repro.core.batch.resolve_batch_algorithm`: with
    ``algorithm="auto"`` and no multiprocessing fan-out
    (``max_workers=1``), the unique misses go through the vectorized
    batch kernel in one lockstep call (falling back to the compiled
    core when numpy is absent); ``algorithm="batch"`` forces the kernel;
    any other knob, or ``max_workers > 1``, keeps the per-configuration
    :func:`census_record` path. All choices produce bit-for-bit
    identical records.

    When tracing is enabled (:mod:`repro.obs`), each call opens an
    ``engine.batch`` span whose closing counters carry this batch's
    accounting deltas; disabled, the extra cost is one attribute check.
    """
    if stats is None:
        stats = EngineStats()
    if not _OBS.enabled:
        return _batch_records_impl(
            configs,
            cache,
            measure_rounds=measure_rounds,
            keyer=keyer,
            precomputed_keys=precomputed_keys,
            max_workers=max_workers,
            chunksize=chunksize,
            stats=stats,
            algorithm=algorithm,
        )
    hits0, dedup0, class0 = stats.cache_hits, stats.deduped, stats.classified
    with _obs_span("engine.batch") as sp:
        records = _batch_records_impl(
            configs,
            cache,
            measure_rounds=measure_rounds,
            keyer=keyer,
            precomputed_keys=precomputed_keys,
            max_workers=max_workers,
            chunksize=chunksize,
            stats=stats,
            algorithm=algorithm,
        )
        sp.add("items", len(records))
        sp.add("cache_hits", stats.cache_hits - hits0)
        sp.add("deduped", stats.deduped - dedup0)
        sp.add("classified", stats.classified - class0)
    _registry.inc("engine.batches")
    _registry.inc("engine.items", len(records))
    _registry.inc("engine.cache_hits", stats.cache_hits - hits0)
    _registry.inc("engine.classified", stats.classified - class0)
    return records


def _batch_records_impl(
    configs,
    cache: ResultCache,
    *,
    measure_rounds: bool,
    keyer: Keyer,
    precomputed_keys: Optional[Sequence[str]],
    max_workers: Optional[int],
    chunksize: int,
    stats: EngineStats,
    algorithm: str,
) -> List[Dict]:
    """The untraced body of :func:`batch_records` (stats required)."""
    keys: List[str] = []  # key per item, in input order
    pending: "Dict[str, Configuration]" = {}  # first config per missing key
    # Records are pinned locally for the duration of the batch: a bounded
    # LRU may evict an entry between lookup and result assembly, so the
    # cache is never re-consulted for a record already seen this batch.
    records_by_key: Dict[str, Dict] = {}

    def keyed_items():
        if precomputed_keys is None:
            for cfg in configs:
                normalized = cfg.normalize()
                yield normalized, keyer(normalized)
        else:
            yield from zip(configs, precomputed_keys)

    for normalized, key in keyed_items():
        if key in records_by_key:  # duplicate of an already-hit key
            stats.cache_hits += 1
        elif key in pending:  # rides on a classification queued this batch
            stats.deduped += 1
        else:
            record = cache.get(key)
            if record_sufficient(record, measure_rounds):
                records_by_key[key] = record
                stats.cache_hits += 1
            else:
                pending[key] = normalized
        keys.append(key)

    if pending:
        missing = list(pending)
        miss_configs = [pending[k] for k in missing]
        if _miss_algorithm(algorithm, max_workers) == "batch":
            from ..core.batch import batch_census_records

            records = batch_census_records(
                miss_configs, measure_rounds=measure_rounds
            )
        else:
            worker = partial(
                census_record,
                measure_rounds=measure_rounds,
                algorithm=algorithm,
            )
            records = parallel_map(
                worker,
                miss_configs,
                max_workers=max_workers,
                chunksize=chunksize,
            )
        for key, record in zip(missing, records):
            records_by_key[key] = record
            cache.put(key, record)
        stats.classified += len(missing)

    return [records_by_key[key] for key in keys]


def _classify_shard(
    shard: ShardSpec,
    workload: Workload,
    cache: ResultCache,
    group_by: GroupBy,
    measure_rounds: bool,
    keyer: Keyer,
    max_workers: Optional[int],
    chunksize: int,
    stats: EngineStats,
    algorithm: str,
) -> Dict[object, CensusRow]:
    """Classify one shard through the cache; return its aggregated rows."""
    # Stream the shard through batch_records: it consumes configurations
    # one at a time, so per-shard memory stays at the (group, key-string)
    # level plus the unique cache misses — never the materialized shard.
    groups: List[object] = []

    def shard_stream():
        for cfg in workload.generate(shard.start, shard.stop):
            normalized = cfg.normalize()
            groups.append(group_by(normalized))
            yield normalized

    records = batch_records(
        shard_stream(),
        cache,
        measure_rounds=measure_rounds,
        keyer=keyer,
        max_workers=max_workers,
        chunksize=chunksize,
        stats=stats,
        algorithm=algorithm,
    )

    rows: Dict[object, CensusRow] = {}
    for group, record in zip(groups, records):
        row = rows.setdefault(group, CensusRow(group=group))
        row.total += 1
        row.iterations_sum += record["iterations"]
        if record["feasible"]:
            row.feasible += 1
            if measure_rounds:
                row.rounds_sum += record["rounds"]
    return rows


def sharded_census(
    workload,
    *,
    group_by: Optional[GroupBy] = None,
    measure_rounds: bool = False,
    num_shards: int = 1,
    cache: Optional[ResultCache] = None,
    keyer: Keyer = default_keyer,
    max_workers: Optional[int] = 1,
    chunksize: int = 16,
    checkpoint_dir: Optional[str] = None,
    algorithm: str = "auto",
    queue: Optional[str] = None,
    queue_workers: int = 1,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> CensusRun:
    """Run a census through the sharded, cached engine pipeline.

    Parameters
    ----------
    workload:
        a :class:`~repro.engine.workloads.Workload`, or any iterable of
        configurations (materialized into a
        :class:`~repro.engine.workloads.SequenceWorkload`).
    group_by:
        aggregation key, applied to the *normalized* configuration;
        defaults to ``(n, span)`` like the serial census. Must be
        JSON-serializable (ints / strings / tuples thereof) when
        checkpointing.
    num_shards:
        how many contiguous shards to split the workload into. Shard
        boundaries never change results — only checkpoint granularity
        and peak memory.
    cache:
        shared :class:`~repro.engine.cache.ResultCache`; a private
        in-memory cache is created when omitted, so even a one-shot run
        gets intra-run isomorphism dedup.
    max_workers / chunksize:
        forwarded to :func:`repro.analysis.parallel.parallel_map` for
        cache-miss classification; ``max_workers=1`` (the default) stays
        serial in-process.
    algorithm:
        classifier implementation for cache misses (see
        :func:`repro.core.classifier.classify`); every choice yields
        bit-for-bit the same records, so checkpoints and caches written
        under one knob replay under any other.
    checkpoint_dir:
        directory for per-shard resume checkpoints; created if missing.
        Checkpoints embed the workload description, the census options,
        and the grouping's definition site, and are ignored on mismatch.
        Caveat: two *different* lambdas defined at the same source site
        (or two SequenceWorkloads whose fingerprints collide) cannot be
        told apart — point distinct censuses at distinct directories.
    queue / queue_workers / lease_ttl:
        the distributed path: ``queue`` is a path for a durable SQLite
        work queue; the census is enumerated into it and drained by
        ``queue_workers`` worker processes (see
        :func:`distributed_census`). Durability comes from the queue,
        so ``checkpoint_dir`` is mutually exclusive with it; the
        grouping must be registered (:func:`register_grouping`) and the
        keyer must be the default (workers always key canonically).
    """
    workload = as_workload(workload)
    if queue is not None:
        if checkpoint_dir is not None:
            raise ValueError(
                "queue= and checkpoint_dir= are mutually exclusive "
                "(the queue itself is the durable state)"
            )
        if keyer is not default_keyer:
            raise ValueError(
                "queue= requires the default keyer (worker processes "
                "always key canonically)"
            )
        return distributed_census(
            workload,
            queue,
            num_workers=queue_workers,
            num_shards=num_shards if num_shards != 1 else None,
            measure_rounds=measure_rounds,
            algorithm=algorithm,
            group_by=group_by,
            cache_path=cache.path if cache is not None else None,
            lease_ttl=lease_ttl,
            max_workers=max_workers,
            chunksize=chunksize,
        )
    if group_by is None:
        group_by = lambda c: (c.n, c.span)  # noqa: E731
    if cache is None:
        cache = ResultCache()
    total = len(workload)
    shards = plan_shards(total, num_shards)
    stats = EngineStats(total_configs=total, shards_total=len(shards))
    fingerprint: Dict = {}
    if checkpoint_dir:
        # workload.describe() may be O(population) (SequenceWorkload
        # digests its members), so only fingerprint when checkpointing
        fingerprint = {
            "workload": workload.describe(),
            "measure_rounds": measure_rounds,
            # identify the grouping by definition site: different call
            # sites (module + qualname) always fingerprint differently,
            # so a resume with a different grouping recomputes instead
            # of replaying rows aggregated under the old one
            "group_by": f"{group_by.__module__}.{group_by.__qualname__}",
        }
        os.makedirs(checkpoint_dir, exist_ok=True)

    result = CensusResult()
    done_wall = 0.0  # traced-mode ETA bookkeeping (computed shards only)
    done_shards = 0
    with _obs_span(
        "census.run",
        total=total,
        shards=len(shards),
        measure_rounds=measure_rounds,
        algorithm=algorithm,
    ):
        for position, shard in enumerate(shards):
            rows: Optional[List[Dict]] = None
            path = (
                _checkpoint_path(checkpoint_dir, shard) if checkpoint_dir else None
            )
            if path:
                rows = _load_checkpoint(path, shard, fingerprint)
            if rows is not None:
                stats.shards_resumed += 1
                if _OBS.enabled:
                    _obs_event(
                        "shard.resumed", shard=shard.index, rows=len(rows)
                    )
            else:
                if _OBS.enabled:
                    _obs_event(
                        "shard.started", shard=shard.index, size=shard.size
                    )
                hits0 = stats.cache_hits + stats.deduped
                with _obs_span(
                    "census.shard", shard=shard.index, size=shard.size
                ) as sp:
                    shard_rows = _classify_shard(
                        shard,
                        workload,
                        cache,
                        group_by,
                        measure_rounds,
                        keyer,
                        max_workers,
                        chunksize,
                        stats,
                        algorithm,
                    )
                rows = _shard_rows(shard_rows)
                if path:
                    _write_checkpoint(path, shard, fingerprint, rows)
                if _OBS.enabled:
                    wall = sp.duration or 0.0
                    done_wall += wall
                    done_shards += 1
                    remaining = len(shards) - position - 1
                    hit_rate = (
                        (stats.cache_hits + stats.deduped - hits0) / shard.size
                        if shard.size
                        else 0.0
                    )
                    _obs_event(
                        "shard.finished",
                        shard=shard.index,
                        wall=round(wall, 6),
                        hit_rate=round(hit_rate, 4),
                        rows=len(rows),
                        eta=round(done_wall / done_shards * remaining, 6),
                    )
            _merge_rows(result, rows)
    if _OBS.enabled:
        _registry.inc("census.runs")
        _registry.inc("census.shards_resumed", stats.shards_resumed)
    return CensusRun(result=result, stats=stats, cache=cache)


# ----------------------------------------------------------------------
# distributed census (durable work queue + lease-based workers)
# ----------------------------------------------------------------------
def create_census_queue(
    queue_path: str,
    workload,
    *,
    num_shards: int,
    measure_rounds: bool = False,
    algorithm: str = "auto",
    group_by: Optional[GroupBy] = None,
    cache_path: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> WorkQueue:
    """Enumerate a census into a durable shard queue (coordinator side).

    The queue's metadata carries everything a standalone worker process
    needs to reconstruct the run: the workload spec
    (:meth:`~repro.engine.workloads.Workload.to_spec`), the census
    options, the grouping *name* (see :func:`register_grouping`), and
    the shared JSONL cache path (``None`` means every worker keeps a
    private in-memory cache). Each shard is enqueued with the workload's
    static cost estimate so the scheduler can rank by expected yield.

    Creation is idempotent: re-running the coordinator against a queue
    holding the *same* run resumes it; a different run at the same path
    raises :class:`~repro.engine.queue.QueueError`.
    """
    workload = as_workload(workload)
    total = len(workload)
    shards = plan_shards(total, num_shards)
    meta = {
        "queue": "census",
        "workload": workload.to_spec(),
        "total": total,
        "measure_rounds": measure_rounds,
        "algorithm": algorithm,
        "group_by": _grouping_name(group_by),
        "cache": cache_path,
        "num_shards": len(shards),
    }
    return WorkQueue.create(
        queue_path,
        [
            (s.index, s.start, s.stop, float(workload.estimate_cost(s.start, s.stop)))
            for s in shards
        ],
        meta,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
    )


def census_queue_worker(
    queue_path: str,
    *,
    owner: Optional[str] = None,
    max_shards: Optional[int] = None,
    wait: bool = True,
    poll: float = 0.5,
    max_workers: Optional[int] = 1,
    chunksize: int = 16,
    lease_ttl: Optional[float] = None,
) -> EngineStats:
    """Drain census shards from a queue until it is finished.

    The worker half of a distributed census: opens the queue at
    ``queue_path``, rebuilds the workload and census options from the
    queue metadata, and loops lease → classify → commit. A background
    thread heartbeats the active lease, so a slow shard is never
    reclaimed from a live worker; a classification error fails the
    shard back to the queue (retried elsewhere up to the attempt cap)
    and the worker moves on.

    With ``wait=True`` (the default) the worker polls while peers hold
    live leases — if a peer dies, its shard expires and this worker
    picks it up — and returns once every shard is ``done`` or
    ``failed``. ``wait=False`` returns as soon as nothing is leasable.
    ``max_shards`` bounds how many shards this call will process.

    Returns this worker's :class:`EngineStats` (its own shards only).
    Safe to run many of these concurrently — in processes, threads, or
    across machines sharing the queue file's filesystem.
    """
    queue = WorkQueue(queue_path, lease_ttl=lease_ttl)
    cache: Optional[ResultCache] = None
    stats = EngineStats()
    try:
        meta = queue.meta()
        if meta.get("queue") != "census":
            raise QueueError(
                f"queue {queue_path!r} is not a census queue "
                f"(queue={meta.get('queue')!r})"
            )
        workload = workload_from_spec(meta["workload"])
        grouping = meta.get("group_by", "n_span")
        try:
            group_by = GROUPINGS[grouping]
        except KeyError:
            raise QueueError(
                f"queue {queue_path!r} uses grouping {grouping!r}, which "
                f"this process has not registered (register_grouping)"
            ) from None
        measure_rounds = bool(meta.get("measure_rounds", False))
        algorithm = str(meta.get("algorithm", "auto"))
        cache_path = meta.get("cache")
        cache = ResultCache(cache_path) if cache_path else ResultCache()
        owner = owner or default_owner()
        done = 0
        while True:
            lease = queue.lease(owner)
            if lease is None:
                if not wait or queue.finished():
                    break
                time.sleep(poll)
                continue
            shard = ShardSpec(
                index=lease.index, start=lease.start, stop=lease.stop
            )
            c0, h0, d0 = stats.classified, stats.cache_hits, stats.deduped
            try:
                with heartbeat_guard(queue, lease), _obs_span(
                    "census.shard", shard=shard.index, size=shard.size
                ):
                    shard_rows = _classify_shard(
                        shard,
                        workload,
                        cache,
                        group_by,
                        measure_rounds,
                        default_keyer,
                        max_workers,
                        chunksize,
                        stats,
                        algorithm,
                    )
            except Exception as exc:
                queue.fail(lease, f"{type(exc).__name__}: {exc}")
                continue
            queue.commit(
                lease,
                _shard_rows(shard_rows),
                {
                    "classified": stats.classified - c0,
                    "cache_hits": stats.cache_hits - h0,
                    "deduped": stats.deduped - d0,
                },
            )
            stats.total_configs += shard.size
            stats.shards_total += 1
            done += 1
            if max_shards is not None and done >= max_shards:
                break
    finally:
        if cache is not None:
            cache.close()
        queue.close()
    return stats


def collect_census_queue(
    queue_or_path,
    *,
    wait: bool = True,
    poll: float = 0.5,
    timeout: Optional[float] = None,
    strict: bool = True,
) -> CensusRun:
    """Merge a census queue's committed shards into a :class:`CensusRun`.

    With ``wait=True`` (the default), polls until the queue is finished
    (every shard ``done`` or ``failed``) or ``timeout`` seconds elapse
    (:class:`~repro.engine.queue.QueueError` on expiry). ``strict=True``
    raises if any shard failed permanently; ``strict=False`` merges the
    done shards and leaves the failures to the caller (inspect
    :meth:`~repro.engine.queue.WorkQueue.failures`).

    The merge reads each done shard exactly once and row addition is
    commutative integer sums, so the merged result is bit-for-bit equal
    to the serial census regardless of which worker computed which
    shard in which order.
    """
    own = isinstance(queue_or_path, str)
    queue = WorkQueue(queue_or_path) if own else queue_or_path
    try:
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while wait and not queue.finished():
            if deadline is not None and time.monotonic() > deadline:
                raise QueueError(
                    f"queue {queue.path!r} not finished after {timeout}s: "
                    + queue.describe()
                )
            time.sleep(poll)
        failures = queue.failures()
        if failures and strict:
            detail = "; ".join(
                f"shard {idx}: {err}" for idx, err in failures[:5]
            )
            raise QueueError(
                f"{len(failures)} shard(s) failed permanently ({detail})"
            )
        result = CensusResult()
        stats = EngineStats()
        merged = 0
        for idx, rows, shard_stats in queue.results():
            _merge_rows(result, rows)
            stats.total_configs += sum(r["total"] for r in rows)
            stats.classified += int(shard_stats.get("classified", 0))
            stats.cache_hits += int(shard_stats.get("cache_hits", 0))
            stats.deduped += int(shard_stats.get("deduped", 0))
            merged += 1
            if _OBS.enabled:
                _obs_event("shard.merged", shard=idx, rows=len(rows))
        stats.shards_total = queue.counts()["total"]
        _registry.inc("queue.merged", merged)
        return CensusRun(result=result, stats=stats, cache=None)
    finally:
        if own:
            queue.close()


def distributed_census(
    workload,
    queue_path: str,
    *,
    num_workers: int = 1,
    num_shards: Optional[int] = None,
    measure_rounds: bool = False,
    algorithm: str = "auto",
    group_by: Optional[GroupBy] = None,
    cache_path: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    max_workers: Optional[int] = 1,
    chunksize: int = 16,
    poll: float = 0.2,
) -> CensusRun:
    """One-call distributed census: coordinator plus N local workers.

    Enumerates the workload into a durable queue at ``queue_path``
    (resuming it if a matching half-finished queue is already there),
    spawns ``num_workers`` worker *processes*, waits for them, and
    merges the committed shards. If every worker dies with work still
    queued, the coordinator drains the remainder in-process — expired
    leases are reclaimed as they age out — so the call either returns
    the complete census or raises on permanently failed shards.

    ``num_shards`` defaults to ``4 * num_workers`` so the scheduler has
    slack to balance uneven shard costs across workers.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if num_shards is None:
        num_shards = max(4 * num_workers, 1)
    queue = create_census_queue(
        queue_path,
        workload,
        num_shards=num_shards,
        measure_rounds=measure_rounds,
        algorithm=algorithm,
        group_by=group_by,
        cache_path=cache_path,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
    )
    # close before forking: SQLite connections must not cross a fork
    queue.close()

    import multiprocessing

    procs = [
        multiprocessing.Process(
            target=census_queue_worker,
            args=(queue_path,),
            kwargs={
                "max_workers": max_workers,
                "chunksize": chunksize,
                "poll": poll,
            },
            daemon=True,
        )
        for _ in range(num_workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    # drain guard: if the workers died (or were killed) with shards
    # still queued, finish their work here once the leases expire
    with WorkQueue(queue_path) as check:
        while not check.finished():
            census_queue_worker(queue_path, wait=False, poll=poll)
            if not check.finished():
                time.sleep(poll)
    return collect_census_queue(queue_path, wait=False)
