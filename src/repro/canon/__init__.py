"""Refinement-based canonical labeling (the post-``n ≤ 10`` canonizer).

``repro.canon`` replaces brute-force canonical-form enumeration — the
worst-case-exponential step that forced the census engine to stop
collapsing isomorphic duplicates above ``n = 10`` — with the classic
canonization stack used by practical graph-canonization tools:

* :mod:`repro.canon.refine` — 1-WL color refinement over
  ``(tag, degree)`` seeds: the coarsest equitable partition, computed in
  near-linear time, with canonical (invariant) color ids;
* :mod:`repro.canon.canonize` — individualization–refinement search
  with bound and automorphism-orbit pruning, returning the exact same
  ``(n, tags, edges)`` canonical tuple as the brute-force oracle, plus
  generators of the tag-preserving automorphism group, behind a
  configuration-equality memo;
* :mod:`repro.canon.invariants` — the refinement certificate: a cheap
  invariant prefilter for isomorphism tests and a cache-key fallback.

Consumers: :mod:`repro.analysis.isomorphism` (``canonical_form`` /
``are_isomorphic`` / ``dedupe`` delegate here; the old enumeration
survives as ``strategy="bruteforce"``), :mod:`repro.engine.keys`
(``default_keyer`` now canonizes at every ``n``),
:mod:`repro.analysis.automorphisms` and :mod:`repro.analysis.symmetry`
(orbit structure from discovered generators), and through the keyer the
batch service's request coalescing. Design notes: ``docs/canon.md``.

    >>> from repro.canon import canonical_form, canonize
    >>> from repro.core.configuration import line_configuration
    >>> a = line_configuration([0, 1, 0])
    >>> b = line_configuration([0, 1, 0]).relabel({0: 2, 1: 1, 2: 0})
    >>> canonical_form(a) == canonical_form(b)
    True
    >>> canonize(a).generators      # the mirror automorphism
    ({0: 2, 1: 1, 2: 0},)
"""

from .canonize import (
    CanonicalLabeling,
    automorphism_generators,
    canonical_form,
    canonize,
    clear_memo,
    memo_info,
)
from .invariants import certificate, certificate_key, may_be_isomorphic
from .refine import (
    IndexedGraph,
    equitable_partition,
    index_graph,
    refine_colors,
    refinement_trace,
    seed_colors,
    stable_coloring,
)

__all__ = [
    "CanonicalLabeling",
    "IndexedGraph",
    "automorphism_generators",
    "canonical_form",
    "canonize",
    "certificate",
    "certificate_key",
    "clear_memo",
    "equitable_partition",
    "index_graph",
    "may_be_isomorphic",
    "memo_info",
    "refine_colors",
    "refinement_trace",
    "seed_colors",
    "stable_coloring",
]
