"""1-WL color refinement over ``(tag, degree)`` seeds.

The workhorse of the canonical-labeling subsystem: *color refinement*
(the 1-dimensional Weisfeiler–Leman algorithm) starts from the
isomorphism-invariant seed coloring ``(tag, degree)`` and repeatedly
re-colors every node by the multiset of its neighbours' colors until the
partition stabilizes. The result is the coarsest *equitable* partition
refining the seeds: any two nodes in the same final cell have, for every
cell ``D``, the same number of neighbours in ``D``.

Two properties make this the right primitive here:

* **Invariance** — color ids are assigned by the rank of each
  signature among the round's sorted distinct signatures, so isomorphic
  configurations get identical color vectors (up to the isomorphism).
  That makes the final coloring a cheap certificate
  (:mod:`repro.canon.invariants`) and a sound automorphism invariant:
  no tag-preserving automorphism maps nodes of different stable colors
  to each other.
* **Cost** — each round is ``O(m log n)`` and there are at most ``n``
  rounds; in practice the partition stabilizes in a handful.

Refinement alone does not canonize (regular-ish graphs keep coarse
cells); :mod:`repro.canon.canonize` layers an individualization search
on top.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.compiled import IndexedConfiguration, compile_configuration
from ..core.configuration import Configuration

#: The compiled dense-index representation is shared with the classifier
#: core (:mod:`repro.core.compiled`): one compilation step serves the
#: classifier, the 1-WL refinement below, and the canonizer. The canon
#: subsystem's historical names remain the public aliases here.
IndexedGraph = IndexedConfiguration

#: Alias of :func:`repro.core.compiled.compile_configuration` — kept as
#: the canon-side entry point name (normalizes, then re-indexes).
index_graph = compile_configuration


def seed_colors(graph: IndexedGraph) -> List[int]:
    """Initial invariant coloring: the rank of ``(tag, degree)`` among
    the sorted distinct profiles (ascending, matching the brute-force
    canonical form's slot ordering)."""
    profiles = [(graph.tags[v], len(graph.adj[v])) for v in range(graph.n)]
    rank = {p: i for i, p in enumerate(sorted(set(profiles)))}
    return [rank[p] for p in profiles]


def refine_colors(
    graph: IndexedGraph, colors: List[int]
) -> Tuple[List[int], int]:
    """Run 1-WL refinement from ``colors`` to the stable partition.

    Returns ``(stable_colors, rounds)``. Color ids stay canonical: each
    round assigns new ids by the rank of ``(old color, sorted neighbour
    color multiset)`` among the round's sorted distinct signatures, so
    the output depends only on the isomorphism class of the seeded
    graph — never on node identities.
    """
    colors = list(colors)
    rounds = 0
    num_colors = len(set(colors))
    while True:
        signatures = [
            (colors[v], tuple(sorted(colors[w] for w in graph.adj[v])))
            for v in range(graph.n)
        ]
        rank = {s: i for i, s in enumerate(sorted(set(signatures)))}
        new_colors = [rank[s] for s in signatures]
        new_num = len(rank)
        if new_num == num_colors:
            # refinement only ever splits cells; an unchanged count
            # means an unchanged partition (ids may be renumbered, but
            # rank order preserves the cell structure)
            return new_colors, rounds
        colors, num_colors = new_colors, new_num
        rounds += 1


def refinement_trace(graph: IndexedGraph) -> Tuple:
    """The full 1-WL trace: one sorted signature multiset per round.

    Round 0 records the sorted ``(tag, degree)`` profile multiset; each
    later round records the sorted multiset of ``(color, neighbour
    color multiset)`` signatures (colors being the previous round's
    invariant rank ids). The trace is isomorphism-invariant, and it
    retains the *structure* of every round — unlike the final color
    ids alone, whose ranks can coincide numerically for graphs whose
    refinement histories differ. This is what makes it a sound and
    usefully sharp certificate (:mod:`repro.canon.invariants`).
    """
    colors = seed_colors(graph)
    trace: List[Tuple] = [
        tuple(
            sorted((graph.tags[v], len(graph.adj[v])) for v in range(graph.n))
        )
    ]
    num_colors = len(set(colors))
    while True:
        signatures = [
            (colors[v], tuple(sorted(colors[w] for w in graph.adj[v])))
            for v in range(graph.n)
        ]
        trace.append(tuple(sorted(signatures)))
        rank = {s: i for i, s in enumerate(sorted(set(signatures)))}
        colors = [rank[s] for s in signatures]
        if len(rank) == num_colors:
            return tuple(trace)
        num_colors = len(rank)


def stable_coloring(cfg: Configuration) -> Tuple[IndexedGraph, List[int]]:
    """Index ``cfg`` and refine its seed coloring to stability."""
    graph = index_graph(cfg)
    colors, _ = refine_colors(graph, seed_colors(graph))
    return graph, colors


def equitable_partition(cfg: Configuration) -> List[List[object]]:
    """The coarsest equitable partition refining ``(tag, degree)``.

    Cells are returned as sorted lists of *original* node ids, ordered
    by their (canonical) stable color — so two isomorphic
    configurations produce cell structures that correspond under any
    isomorphism. Nodes in one cell are exactly the nodes 1-WL cannot
    tell apart; every tag-preserving automorphism orbit is contained in
    some cell (the converse fails for regular-ish graphs, which is why
    canonization still needs a search).
    """
    graph, colors = stable_coloring(cfg)
    cells: Dict[int, List[object]] = {}
    for v in range(graph.n):
        cells.setdefault(colors[v], []).append(graph.nodes[v])
    return [sorted(cells[c]) for c in sorted(cells)]
