"""Fast isomorphism invariants: the refinement certificate.

A *certificate* is a cheap hashable value equal for isomorphic
configurations. Unlike a canonical form it may collide for
non-isomorphic ones (1-WL cannot separate some regular-ish graphs), so
it serves as a **prefilter**: different certificates prove
non-isomorphism in ``O(m log n)``; equal certificates hand off to the
exact (worst-case exponential) canonizer. The same asymmetry makes it
a useful cache-key fallback when exactness is not required — a
certificate key merges at most whole 1-WL-equivalence classes, never
splits an isomorphism class across entries.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from ..core.configuration import Configuration
from .refine import index_graph, refinement_trace


def certificate(cfg: Configuration) -> Tuple:
    """Isomorphism-invariant certificate of ``cfg``.

    The tuple carries the size, edge count, and the full 1-WL
    refinement trace (:func:`repro.canon.refine.refinement_trace`) of
    the normalized configuration: one sorted signature multiset per
    refinement round. Isomorphic configurations always agree (every
    round's multiset is built from invariant rank ids); configurations
    with different certificates are provably non-isomorphic. Two
    non-isomorphic configurations collide exactly when 1-WL cannot
    separate them — the regular-ish territory where only the exact
    canonizer decides.
    """
    graph = index_graph(cfg)
    return (graph.n, graph.num_edges, refinement_trace(graph))


def certificate_key(cfg: Configuration) -> str:
    """Short hex digest of :func:`certificate`.

    A linear-ish-time cache-key *fallback*: strictly stronger than the
    engine's ``labeled_key`` at collapsing duplicates (relabelings and
    1-WL-equivalent isomorphs merge) while never conflating
    configurations the exact canonical key would separate beyond one
    1-WL class. Useful when a workload is too adversarial for exact
    canonization but duplicates should still mostly collapse.
    """
    blob = repr(certificate(cfg))  # nested int tuples: repr is stable
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def may_be_isomorphic(a: Configuration, b: Configuration) -> bool:
    """Certificate prefilter: ``False`` proves non-isomorphism; ``True``
    means 1-WL cannot separate the two and an exact check must decide."""
    if a.n != b.n or a.num_edges != b.num_edges:
        return False
    return certificate(a) == certificate(b)
