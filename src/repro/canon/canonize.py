"""Individualization–refinement canonical labeling.

This module computes, for a configuration, the exact same canonical
form the brute-force path defines — the lexicographic minimum, over all
relabelings to ``0..n−1`` that respect the sorted ``(tag, degree)``
profile layout, of the ``(n, tag vector, edge set)`` tuple — but finds
it by *search* instead of enumeration:

1. **Slot layout** — nodes are assigned to slots ``0..n−1`` whose
   ``(tag, degree)`` profiles ascend, exactly like the brute force, so
   the tag vector is fixed and only the edge set varies.
2. **Individualization** — slots are filled one at a time (a
   depth-first search over group-respecting assignments). Assigning
   slot ``k`` fixes the adjacency bits ``(i, k)`` for all earlier
   slots ``i``, so every search node knows a growing prefix of the
   upper-triangular adjacency rows.
3. **Bound pruning** — minimizing the sorted edge tuple is equivalent
   to *maximizing* the row-major upper-triangle bitstring, and each
   partially-known row has a tight optimistic completion (its remaining
   neighbours packed into the earliest open columns). A branch whose
   optimistic rows fall lexicographically below the incumbent can reach
   no optimum and is cut. Candidate ordering (prefer nodes adjacent to
   the earliest filled slots, refinement color as tie-break) makes the
   first descent land a near-optimal incumbent, so the cut bites early.
4. **Automorphism-orbit pruning** — two leaves with equal rows differ
   by a tag-preserving automorphism; every tie discovered is recorded
   as a generator. At each search node, candidates equivalent — under
   discovered generators that fix the already-filled slots pointwise —
   to an already-explored candidate are skipped: their subtrees are
   mirror images. The recorded generators provably generate the full
   tag-preserving automorphism group (every optimal leaf is either
   visited or skipped because it is covered by the group discovered so
   far), which :mod:`repro.analysis.automorphisms` reuses.

Because the search space is exactly the brute force's candidate set and
pruning only removes provably non-optimal or duplicate branches, the
returned form is **bit-for-bit identical** to the brute-force oracle —
the E21 benchmark gates this on an exhaustive small-``n`` sweep. The
worst case remains exponential (canonical labeling is not known to be
polynomial), but on the workloads this repo serves — random G(n, p)
populations, the paper's path families, census-scale enumerations —
the search visits near-linearly many nodes where the brute force
enumerates products of factorials.

A bounded memo keyed by configuration equality makes repeated
canonization of the same (normalized) configuration O(n + m) after the
first call — the service's warm-traffic path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..core.configuration import Configuration
from ..obs.runtime import STATE as _OBS
from ..obs.runtime import registry as _registry
from .refine import IndexedGraph, index_graph, refine_colors, seed_colors

#: Entries kept in the canonization memo (one per distinct normalized
#: configuration seen); eviction is LRU.
MEMO_SIZE = 8192


@dataclass(frozen=True)
class CanonicalLabeling:
    """The result of canonizing one configuration.

    ``form`` has the exact shape and value of
    :func:`repro.analysis.isomorphism.canonical_form`; ``mapping`` sends
    original node ids to canonical slots ``0..n−1``; ``generators`` are
    tag-preserving automorphisms (original-id dicts) discovered by the
    search, generating the full automorphism group. Treat all three as
    read-only — instances are shared through the memo.
    """

    form: Tuple
    mapping: Dict[object, int]
    generators: Tuple[Dict[object, object], ...]

    @property
    def n(self) -> int:
        """Number of nodes of the canonized configuration."""
        return self.form[0]

    @property
    def is_rigid(self) -> bool:
        """True iff the search found no nontrivial automorphism (the
        generators provably generate the whole group, so an empty tuple
        means the configuration is rigid)."""
        return not self.generators


def _search(graph: IndexedGraph) -> Tuple[Tuple[int, ...], List[int], List[List[int]]]:
    """Core branch-and-bound: maximal row-major adjacency rows.

    Returns ``(best_rows, best_assigned, generators)`` where
    ``best_rows[i]`` is the integer encoding of canonical row ``i``
    (bit ``n−1−j`` set iff slots ``i < j`` are adjacent),
    ``best_assigned[i]`` is the graph index placed at slot ``i``, and
    ``generators`` are index-level automorphism permutations.
    """
    n = graph.n
    profiles = [(graph.tags[v], len(graph.adj[v])) for v in range(n)]
    ordered = sorted(set(profiles))
    members: Dict[Tuple[int, int], List[int]] = {p: [] for p in ordered}
    for v in range(n):
        members[profiles[v]].append(v)
    # group index owning each slot (groups are contiguous, ascending)
    slot_group: List[List[int]] = []
    for p in ordered:
        slot_group.extend([members[p]] * len(members[p]))

    # refinement colors break candidate-ordering ties toward the
    # invariant structure (pure heuristic: correctness never depends on it)
    colors, _ = refine_colors(graph, seed_colors(graph))

    pos = [-1] * n  # vertex index -> slot, or -1
    assigned: List[int] = []  # slot -> vertex index
    rows = [0] * n  # per-slot adjacency-row ints (first len(assigned) live)
    rem = [0] * n  # per-slot count of still-unassigned neighbours

    best_rows: Optional[Tuple[int, ...]] = None
    best_assigned: List[int] = []
    generators: List[List[int]] = []

    def place(v: int) -> None:
        k = len(assigned)
        bit = 1 << (n - 1 - k)
        unplaced = 0
        for u in graph.adj[v]:
            i = pos[u]
            if i >= 0:
                rows[i] |= bit
                rem[i] -= 1
            else:
                unplaced += 1
        pos[v] = k
        rem[k] = unplaced
        rows[k] = 0
        assigned.append(v)

    def unplace() -> None:
        v = assigned.pop()
        k = len(assigned)
        bit = 1 << (n - 1 - k)
        for u in graph.adj[v]:
            i = pos[u]
            if 0 <= i < k:
                rows[i] &= ~bit
                rem[i] += 1
        pos[v] = -1

    def bounded_out() -> bool:
        """True when no completion of the current prefix can reach the
        incumbent (optimistic rows fall lexicographically below it)."""
        if best_rows is None:
            return False
        k = len(assigned)
        for i in range(k):
            r = rem[i]
            # pack row i's remaining neighbours into columns k..k+r-1
            ub = rows[i] | (((1 << r) - 1) << (n - k - r)) if r else rows[i]
            b = best_rows[i]
            if ub < b:
                return True
            if ub > b:
                return False
        return False

    def prefix_fixing_orbits() -> List[int]:
        """Union-find over vertex indices, merging along discovered
        generators that fix every filled slot pointwise."""
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for gen in generators:
            if all(gen[v] == v for v in assigned):
                for v in range(n):
                    ra, rb = find(v), find(gen[v])
                    if ra != rb:
                        parent[ra] = rb
        return [find(v) for v in range(n)]

    def record_leaf() -> None:
        nonlocal best_rows, best_assigned
        leaf = tuple(rows)
        if best_rows is None or leaf > best_rows:
            best_rows = leaf
            best_assigned = list(assigned)
        elif leaf == best_rows:
            # two optimal labelings differ by an automorphism:
            # gamma(best_assigned[i]) = assigned[i]
            gamma = [0] * n
            for i in range(n):
                gamma[best_assigned[i]] = assigned[i]
            if any(gamma[v] != v for v in range(n)) and gamma not in generators:
                generators.append(gamma)

    def rec() -> None:
        k = len(assigned)
        if k == n:
            record_leaf()
            return
        if bounded_out():
            return
        candidates = [v for v in slot_group[k] if pos[v] < 0]
        if len(candidates) > 1:
            # prefer candidates wired to the earliest filled slots;
            # refinement color, then index, break ties deterministically
            def score(v: int) -> int:
                s = 0
                for u in graph.adj[v]:
                    i = pos[u]
                    if i >= 0:
                        s |= 1 << (n - 1 - i)
                return s

            candidates.sort(key=lambda v: (-score(v), colors[v], v))
        tried: List[int] = []
        roots: List[int] = []
        gen_version = -1  # recompute orbits only when generators grew
        for v in candidates:
            if tried and generators:
                if len(generators) != gen_version:
                    roots = prefix_fixing_orbits()
                    gen_version = len(generators)
                if any(roots[v] == roots[u] for u in tried):
                    continue  # mirror image of an explored subtree
            tried.append(v)
            place(v)
            rec()
            unplace()

    rec()
    assert best_rows is not None
    return best_rows, best_assigned, generators


def _assemble(graph: IndexedGraph, best_rows, best_assigned, gens) -> CanonicalLabeling:
    n = graph.n
    tagvec = tuple(graph.tags[best_assigned[i]] for i in range(n))
    edges = tuple(
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if best_rows[i] >> (n - 1 - j) & 1
    )
    mapping = {graph.nodes[best_assigned[i]]: i for i in range(n)}
    generators = tuple(
        {graph.nodes[v]: graph.nodes[g[v]] for v in range(n)} for g in gens
    )
    return CanonicalLabeling(
        form=(n, tagvec, edges), mapping=mapping, generators=generators
    )


@lru_cache(maxsize=MEMO_SIZE)
def _canonize_normalized(cfg: Configuration) -> CanonicalLabeling:
    """Memoized canonization of an already-normalized configuration."""
    graph = index_graph(cfg)
    return _assemble(graph, *_search(graph))


def canonize(cfg: Configuration, *, use_memo: bool = True) -> CanonicalLabeling:
    """Canonize ``cfg``: canonical form, mapping, automorphism generators.

    The returned form equals the brute-force
    ``strategy="bruteforce"`` path of
    :func:`repro.analysis.isomorphism.canonical_form` bit for bit. With
    ``use_memo`` (the default) results are shared across calls for
    equal normalized configurations — pass ``use_memo=False`` to time
    the cold search (the E21 benchmark does).
    """
    normalized = cfg.normalize()
    if use_memo:
        if _OBS.enabled:  # per-call: guarded, one attribute check when off
            _registry.inc("canon.calls")
            hits_before = _canonize_normalized.cache_info().hits
            labeling = _canonize_normalized(normalized)
            if _canonize_normalized.cache_info().hits > hits_before:
                _registry.inc("canon.memo_hits")
            return labeling
        return _canonize_normalized(normalized)
    if _OBS.enabled:
        _registry.inc("canon.calls")
        _registry.inc("canon.cold_searches")
    graph = index_graph(normalized)
    return _assemble(graph, *_search(graph))


def canonical_form(cfg: Configuration) -> Tuple:
    """The canonical ``(n, tag vector, edge set)`` tuple of ``cfg``.

    Equal for two configurations iff they are tag-preserving isomorphic;
    identical in shape and value to the brute-force path it replaces.
    """
    return canonize(cfg).form


def automorphism_generators(cfg: Configuration) -> Tuple[Dict[object, object], ...]:
    """Generators of the tag-preserving automorphism group of ``cfg``,
    as node → node dicts (a byproduct of canonization, memoized with it).

    The empty tuple means the configuration is rigid. The generating
    set is typically far smaller than the group itself — use
    :func:`repro.analysis.automorphisms.automorphism_orbits` for orbit
    structure without enumerating the group.
    """
    return canonize(cfg).generators


def clear_memo() -> None:
    """Drop every memoized canonization (benchmarks time cold runs)."""
    _canonize_normalized.cache_clear()


def memo_info():
    """The memo's ``functools`` cache statistics (hits, misses, size)."""
    return _canonize_normalized.cache_info()
